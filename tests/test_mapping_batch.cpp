// Property tests for TreeMapping::color_of_batch: for every mapping type,
// retrieval mode and GammaVariant mutant, the batch kernel must agree
// color-for-color with scalar color_of on arbitrary node sets — the fast
// paths (table gathers, arithmetic loops, ColorMapping's block-aware
// resolver) are pure optimizations, never semantic forks.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/combinators.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {
namespace {

using internal::GammaVariant;

std::vector<Node> random_nodes(const CompleteBinaryTree& tree,
                               std::size_t count, Rng& rng) {
  std::vector<Node> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto level = static_cast<std::uint32_t>(rng.below(tree.levels()));
    out.push_back(Node{level, rng.below(pow2(level))});
  }
  return out;
}

/// Batch must equal scalar on empty spans, random sets, and sets biased
/// toward the deepest levels (where ColorMapping's chase is longest).
void expect_batch_matches_scalar(const TreeMapping& mapping,
                                 std::uint64_t seed) {
  const CompleteBinaryTree& tree = mapping.tree();
  Rng rng(seed);

  // Empty input: no touch of out.
  mapping.color_of_batch({}, {});

  std::vector<Node> nodes = random_nodes(mapping.tree(), 512, rng);
  // Deep-biased tail: the whole bottom level run plus a root-to-leaf path.
  const std::uint32_t bottom = tree.levels() - 1;
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(64, pow2(bottom)); ++i) {
    nodes.push_back(Node{bottom, i});
  }
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    nodes.push_back(Node{j, pow2(j) - 1});
  }

  std::vector<Color> batch(nodes.size(), 0xdeadbeef);
  mapping.color_of_batch(nodes, batch);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(batch[i], mapping.color_of(nodes[i]))
        << mapping.name() << " node " << to_string(nodes[i]) << " (#" << i
        << ")";
  }

  // colors_of is documented to route through the batch kernel.
  const std::vector<Color> routed = mapping.colors_of(nodes);
  ASSERT_EQ(routed, batch);
}

TEST(MappingBatch, BaselinesAgreeWithScalar) {
  const CompleteBinaryTree tree(12);
  expect_batch_matches_scalar(ModuloMapping(tree, 13), 1);
  expect_batch_matches_scalar(LevelShiftMapping(tree, 13), 2);
  expect_batch_matches_scalar(LevelModMapping(tree, 7), 3);
  expect_batch_matches_scalar(RandomMapping(tree, 13, 99), 4);
}

TEST(MappingBatch, LabelTreeAgreesWithScalarBothRetrievals) {
  const CompleteBinaryTree tree(14);
  for (const std::uint32_t M : {7u, 15u, 21u, 31u}) {
    expect_batch_matches_scalar(
        LabelTreeMapping(tree, M, LabelTreeMapping::Retrieval::kTable), M);
    expect_batch_matches_scalar(
        LabelTreeMapping(tree, M, LabelTreeMapping::Retrieval::kRecursive), M);
  }
}

TEST(MappingBatch, ColorMappingAgreesWithScalarAllModesAndVariants) {
  const CompleteBinaryTree tree(13);
  for (const auto variant : {GammaVariant::kCorrect,
                             GammaVariant::kIncludeChildRoot,
                             GammaVariant::kReversed}) {
    for (const auto retrieval : {ColorMapping::Retrieval::kLazy,
                                 ColorMapping::Retrieval::kBlockTable}) {
      expect_batch_matches_scalar(
          ColorMapping(tree, 6, 3, variant, retrieval), 7);
      expect_batch_matches_scalar(
          ColorMapping(tree, 5, 2, variant, retrieval), 8);
      // N == levels: a single block.
      expect_batch_matches_scalar(
          ColorMapping(tree, 13, 3, variant, retrieval), 9);
    }
  }
}

TEST(MappingBatch, ColorMappingDeepTreeBeyondTopTable) {
  // 40 levels with a small stride: the chase crosses many block
  // generations and the truncated top-color table (20 levels) cannot
  // cover the tree, so the table-assisted chase path is exercised.
  const CompleteBinaryTree tree(40);
  for (const auto variant : {GammaVariant::kCorrect,
                             GammaVariant::kIncludeChildRoot,
                             GammaVariant::kReversed}) {
    expect_batch_matches_scalar(ColorMapping(tree, 6, 3, variant), 11);
    expect_batch_matches_scalar(
        ColorMapping(tree, 6, 3, variant, ColorMapping::Retrieval::kBlockTable),
        12);
    // Stride 1: the longest possible chase (one level per generation).
    expect_batch_matches_scalar(ColorMapping(tree, 3, 2, variant), 13);
  }
  // k >= 20: the Sigma region alone exceeds the top-table cap.
  expect_batch_matches_scalar(ColorMapping(tree, 25, 21), 14);
}

TEST(MappingBatch, BasicEagerAndPermutedAgreeWithScalar) {
  const CompleteBinaryTree tree(10);
  expect_batch_matches_scalar(BasicColorMapping(tree, 10, 3), 21);

  const ColorMapping base(tree, 6, 3);
  expect_batch_matches_scalar(EagerColorMapping(base), 22);

  Rng rng(23);
  expect_batch_matches_scalar(PermutedMapping::shuffled(base, rng), 24);
}

TEST(MappingBatch, OptimalAndScaledFactoriesAgreeWithScalar) {
  const CompleteBinaryTree tree(16);
  expect_batch_matches_scalar(make_optimal_color_mapping(tree, 15), 31);
  expect_batch_matches_scalar(make_cf_mapping_for_modules(tree, 12, 2), 32);
}

// A mapping that does not override color_of_batch exercises the virtual
// base implementation (per-node loop).
class DefaultBatchMapping final : public TreeMapping {
 public:
  explicit DefaultBatchMapping(CompleteBinaryTree tree) : TreeMapping(tree) {}
  [[nodiscard]] Color color_of(Node n) const override {
    return static_cast<Color>(bfs_id(n) % 11);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return 11;
  }
  [[nodiscard]] std::string name() const override { return "default-batch"; }
};

TEST(MappingBatch, BaseClassDefaultAgreesWithScalar) {
  expect_batch_matches_scalar(DefaultBatchMapping(CompleteBinaryTree(11)), 41);
}

TEST(MappingBatch, PartialOutputSpanOnlyWritesPrefix) {
  const CompleteBinaryTree tree(10);
  const ColorMapping mapping(tree, 6, 3);
  Rng rng(51);
  const std::vector<Node> nodes = random_nodes(tree, 32, rng);
  std::vector<Color> out(nodes.size() + 8, 0xabcdef);
  mapping.color_of_batch(nodes, out);
  for (std::size_t i = nodes.size(); i < out.size(); ++i) {
    EXPECT_EQ(out[i], 0xabcdefu) << "batch wrote past nodes.size()";
  }
}

TEST(MappingBatch, ConcurrentFirstUseIsConsistent) {
  // The ColorMapping batch accelerator is built lazily on first use; many
  // threads racing on a cold mapping must all see coherent tables. Run
  // under TSan via the sanitizer suite.
  const CompleteBinaryTree tree(22);
  const ColorMapping mapping(tree, 6, 3);
  Rng rng(61);
  const std::vector<Node> nodes = random_nodes(tree, 2048, rng);

  std::vector<Color> expected(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    expected[i] = mapping.color_of(nodes[i]);
  }

  constexpr unsigned kThreads = 4;
  std::vector<std::vector<Color>> got(kThreads,
                                      std::vector<Color>(nodes.size()));
  {
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        mapping.color_of_batch(nodes, got[t]);
      });
    }
    for (auto& th : pool) th.join();
  }
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[t], expected) << "thread " << t;
  }
}

TEST(MappingBatch, CopiesShareTheAccelerator) {
  const CompleteBinaryTree tree(18);
  const ColorMapping original(tree, 6, 3);
  Rng rng(71);
  const std::vector<Node> nodes = random_nodes(tree, 256, rng);

  std::vector<Color> before(nodes.size());
  original.color_of_batch(nodes, before);  // builds the accelerator

  const ColorMapping copy = original;  // copy after build: shares tables
  std::vector<Color> after(nodes.size());
  copy.color_of_batch(nodes, after);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace pmtree
