// Deep-tree behaviour: the lazy retrieval paths let pmtree address trees
// far too large to materialize (up to 2^60 nodes). These tests exercise
// H in the 30-50 range with sampled template instances — conflict-freeness
// must hold at any depth, and arithmetic must not overflow.
#include <gtest/gtest.h>

#include <algorithm>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/verify.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/templates/sampler.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

class DeepTrees : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DeepTrees, ColorStaysConflictFreeOnSampledTemplates) {
  const std::uint32_t H = GetParam();
  const CompleteBinaryTree tree(H);
  const std::uint32_t N = 7, k = 3;
  const ColorMapping map(tree, N, k);
  Rng rng(H);
  for (int trial = 0; trial < 300; ++trial) {
    const auto subtree = sample_subtree(tree, tree_size(k), rng);
    ASSERT_TRUE(subtree.has_value());
    EXPECT_EQ(conflicts(map, subtree->nodes()), 0u);
    const auto path = sample_path(tree, N, rng);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(conflicts(map, path->nodes()), 0u);
  }
}

TEST_P(DeepTrees, ColorBlockTableAgreesWithLazyOnSamples) {
  const std::uint32_t H = GetParam();
  const CompleteBinaryTree tree(H);
  const ColorMapping lazy(tree, 8, 3);
  const ColorMapping fast(tree, 8, 3, internal::GammaVariant::kCorrect,
                          ColorMapping::Retrieval::kBlockTable);
  Rng rng(H * 31);
  for (int trial = 0; trial < 2000; ++trial) {
    const Node n = node_at(rng.below(tree.size()));
    ASSERT_EQ(lazy.color_of(n), fast.color_of(n)) << to_string(n);
  }
}

TEST_P(DeepTrees, ColorLevelRunsStayCheapOnSamples) {
  const std::uint32_t H = GetParam();
  const CompleteBinaryTree tree(H);
  const ColorMapping map(tree, 7, 3);
  Rng rng(H * 7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto run = sample_level_run(tree, 7, rng);
    ASSERT_TRUE(run.has_value());
    EXPECT_LE(conflicts(map, run->nodes()), 2u);
  }
}

TEST_P(DeepTrees, LabelTreeColorsLegalAndBlockPathsRainbow) {
  const std::uint32_t H = GetParam();
  const CompleteBinaryTree tree(H);
  const std::uint32_t M = 127;
  const LabelTreeMapping map(tree, M);
  const std::uint32_t m = map.m();
  Rng rng(H * 13);
  std::vector<Color> colors;
  for (int trial = 0; trial < 300; ++trial) {
    // A random whole-block ascending path: must be rainbow (MICRO-LABEL's
    // per-block CF property), at any depth.
    const std::uint32_t jb = static_cast<std::uint32_t>(
        rng.below(tree.levels() / m));
    const std::uint32_t deepest = jb * m + m - 1;
    Node cur = v(rng.below(pow2(deepest)), deepest);
    colors.clear();
    for (std::uint32_t step = 0; step < m; ++step) {
      const Color c = map.color_of(cur);
      ASSERT_LT(c, M);
      colors.push_back(c);
      cur = parent(cur);
    }
    std::sort(colors.begin(), colors.end());
    EXPECT_EQ(std::adjacent_find(colors.begin(), colors.end()), colors.end());
  }
}

TEST_P(DeepTrees, OptimalityWitnessStillHolds) {
  const std::uint32_t H = GetParam();
  // The witness family at anchor level N - k is small (2^{N-k} instances)
  // regardless of H.
  const std::uint32_t N = 9, k = 3;
  const ColorMapping map(CompleteBinaryTree(H), N, k);
  const auto verdict = verify_optimality_witness(map, N, k);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeepTrees,
                         ::testing::Values(30u, 40u, 50u),
                         [](const auto& param_info) {
                           return "H" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace pmtree
