// ArrivalSchedule contract tests: degenerate-parameter guards (bursty
// gap 0 degenerates to all-at-once exactly as fixed_rate(0) does, burst 0
// is normalized to 1) and the explicit per-access schedule the serve
// layer dispatches dynamically formed batches through.
#include "pmtree/engine/arrival.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/reference.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/workload.hpp"

namespace pmtree {
namespace {

using engine::ArrivalSchedule;
using engine::CycleEngine;
using engine::EngineResult;
using engine::ReferenceEngine;

void expect_same_trajectory(const EngineResult& got, const EngineResult& want) {
  ASSERT_EQ(got.accesses, want.accesses);
  ASSERT_EQ(got.requests, want.requests);
  ASSERT_EQ(got.completion_cycle, want.completion_cycle);
  ASSERT_EQ(got.busy_cycles, want.busy_cycles);
  ASSERT_EQ(got.served, want.served);
  ASSERT_EQ(got.queue_high_water, want.queue_high_water);
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    ASSERT_EQ(got.records[i].arrival, want.records[i].arrival) << i;
    ASSERT_EQ(got.records[i].completion, want.records[i].completion) << i;
  }
}

TEST(ArrivalSchedule, BurstyZeroGapDegeneratesToAllAtOnce) {
  // Regression for the degenerate gap == 0: every burst is due at cycle 0,
  // so arrivals — and the whole engine trajectory — match all-at-once.
  const ArrivalSchedule degenerate = ArrivalSchedule::bursty(8, 0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(degenerate.arrival_cycle(i), 0u);
  }

  const CompleteBinaryTree tree(10);
  const ColorMapping map = make_optimal_color_mapping(tree, 15);
  const Workload workload = Workload::mixed(tree, 7, 60, 5);
  const CycleEngine eng(map);
  const ReferenceEngine seed(map);
  const EngineResult want = eng.run(workload, ArrivalSchedule::all_at_once());
  expect_same_trajectory(eng.run(workload, degenerate), want);
  // The seed loop agrees, so the guard is a property of the schedule, not
  // of either engine's idle-gap handling.
  expect_same_trajectory(seed.run(workload, degenerate), want);
}

TEST(ArrivalSchedule, BurstyZeroBurstNormalizesToOne) {
  // burst 0 is normalized to 1, which makes bursty(1, gap) == fixed_rate(gap).
  const ArrivalSchedule normalized = ArrivalSchedule::bursty(0, 3);
  const ArrivalSchedule fixed = ArrivalSchedule::fixed_rate(3);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(normalized.arrival_cycle(i), fixed.arrival_cycle(i));
  }
}

TEST(ArrivalSchedule, ExplicitCyclesAreReturnedVerbatim) {
  const std::vector<std::uint64_t> cycles{0, 0, 3, 7, 7, 20};
  const ArrivalSchedule schedule = ArrivalSchedule::explicit_cycles(cycles);
  EXPECT_FALSE(schedule.closed_loop());
  EXPECT_EQ(schedule.kind(), ArrivalSchedule::Kind::kExplicit);
  EXPECT_EQ(schedule.name(), "explicit(n=6)");
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    EXPECT_EQ(schedule.arrival_cycle(i), cycles[i]);
  }
}

TEST(ArrivalSchedule, ExplicitMatchesEquivalentClosedForms) {
  // An explicit schedule spelling out fixed_rate / all-at-once arrivals
  // reproduces those trajectories bit for bit on both engines.
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 9);
  const Workload workload = Workload::mixed(tree, 7, 40, 13);
  const CycleEngine eng(map);
  const ReferenceEngine seed(map);

  for (const std::uint64_t period : {std::uint64_t{0}, std::uint64_t{2},
                                     std::uint64_t{9}}) {
    SCOPED_TRACE("period=" + std::to_string(period));
    std::vector<std::uint64_t> cycles(workload.size());
    for (std::size_t i = 0; i < cycles.size(); ++i) cycles[i] = i * period;
    const ArrivalSchedule explicit_schedule =
        ArrivalSchedule::explicit_cycles(cycles);
    const EngineResult want =
        eng.run(workload, ArrivalSchedule::fixed_rate(period));
    expect_same_trajectory(eng.run(workload, explicit_schedule), want);
    expect_same_trajectory(seed.run(workload, explicit_schedule), want);
  }
}

TEST(ArrivalSchedule, ExplicitWithIdleGapsAndTies) {
  // Ties arrive together; long gaps are idle-skipped, not simulated
  // cycle by cycle — completions still line up with per-access arithmetic.
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  // Three single-node accesses on the same module: arrivals 0, 0, 1000.
  const Node n = v(3, 4);
  const Workload workload(std::vector<Workload::Access>{{n}, {n}, {n}});
  std::vector<std::uint64_t> cycles{0, 0, 1000};
  const CycleEngine eng(map);
  const EngineResult got =
      eng.run(workload, ArrivalSchedule::explicit_cycles(cycles));
  // FIFO on one module: served at cycles 1, 2; the straggler at 1001.
  EXPECT_EQ(got.records[0].completion, 1u);
  EXPECT_EQ(got.records[1].completion, 2u);
  EXPECT_EQ(got.records[2].arrival, 1000u);
  EXPECT_EQ(got.records[2].completion, 1001u);
  EXPECT_EQ(got.completion_cycle, 1001u);
  EXPECT_EQ(got.busy_cycles, 3u);
}

}  // namespace
}  // namespace pmtree
