#include "pmtree/pms/simulator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/memory_system.hpp"

namespace pmtree {
namespace {

TEST(Simulator, MatchesSequentialMemorySystem) {
  const CompleteBinaryTree tree(12);
  const ColorMapping map(tree, 6, 3);
  const auto wl = Workload::mixed(tree, 10, 200, 11);

  MemorySystem sequential(map);
  for (const auto& access : wl.accesses()) sequential.access(access);

  const ParallelAccessSimulator sim(4);
  const auto report = sim.run(map, wl);

  EXPECT_EQ(report.accesses, wl.size());
  EXPECT_EQ(report.total_rounds, sequential.total_rounds());
  EXPECT_EQ(report.ideal_rounds, sequential.ideal_rounds());
  EXPECT_EQ(report.max_rounds, sequential.round_stats().max());
  ASSERT_EQ(report.traffic.size(), sequential.traffic().size());
  for (std::size_t c = 0; c < report.traffic.size(); ++c) {
    EXPECT_EQ(report.traffic[c], sequential.traffic()[c]);
  }
}

TEST(Simulator, ThreadCountDoesNotChangeAccounting) {
  const CompleteBinaryTree tree(12);
  const ModuloMapping map(tree, 15);
  const auto wl = Workload::paths(tree, 8, 300, 12);
  const auto one = ParallelAccessSimulator(1).run(map, wl);
  const auto many = ParallelAccessSimulator(8).run(map, wl);
  EXPECT_EQ(one.total_rounds, many.total_rounds);
  EXPECT_EQ(one.requests, many.requests);
  EXPECT_EQ(one.traffic, many.traffic);
}

TEST(Simulator, ReportIsDeterministicAcrossThreadCounts) {
  // The full report — every field except host wall time — must be
  // identical for threads = 1, 2, 8 and across repeated runs: merging is
  // all integer sums/maxes, so no merge order may be observable.
  const CompleteBinaryTree tree(12);
  const RandomMapping map(tree, 13, 99);
  const auto wl = Workload::mixed(tree, 15, 500, 21);
  const auto baseline = ParallelAccessSimulator(1).run(map, wl);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto report = ParallelAccessSimulator(threads).run(map, wl);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(report.accesses, baseline.accesses);
      EXPECT_EQ(report.requests, baseline.requests);
      EXPECT_EQ(report.total_rounds, baseline.total_rounds);
      EXPECT_EQ(report.ideal_rounds, baseline.ideal_rounds);
      EXPECT_EQ(report.max_rounds, baseline.max_rounds);
      EXPECT_EQ(report.traffic, baseline.traffic);
      EXPECT_DOUBLE_EQ(report.mean_rounds, baseline.mean_rounds);
    }
  }
}

TEST(Simulator, MoreThreadsThanAccesses) {
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  const auto wl = Workload::paths(tree, 4, 3, 7);
  const auto wide = ParallelAccessSimulator(64).run(map, wl);
  const auto narrow = ParallelAccessSimulator(1).run(map, wl);
  EXPECT_EQ(wide.accesses, 3u);
  EXPECT_EQ(wide.total_rounds, narrow.total_rounds);
  EXPECT_EQ(wide.traffic, narrow.traffic);
}

TEST(Simulator, SlowdownIsAtLeastOne) {
  const CompleteBinaryTree tree(12);
  const ModuloMapping map(tree, 7);
  const auto wl = Workload::subtrees(tree, 7, 100, 13);
  const auto report = ParallelAccessSimulator(2).run(map, wl);
  EXPECT_GE(report.slowdown(), 1.0);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Simulator, ConflictFreeMappingHitsIdealRounds) {
  const CompleteBinaryTree tree(12);
  const ColorMapping map(tree, 6, 3);  // CF on P(6), modules = 10
  const auto wl = Workload::paths(tree, 6, 200, 14);
  const auto report = ParallelAccessSimulator().run(map, wl);
  // Every path of 6 <= M nodes is one round; ideal is also one round each.
  EXPECT_EQ(report.total_rounds, report.accesses);
  EXPECT_EQ(report.ideal_rounds, report.accesses);
  EXPECT_DOUBLE_EQ(report.slowdown(), 1.0);
}

TEST(Simulator, EmptyWorkload) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 7);
  const auto report = ParallelAccessSimulator(4).run(map, Workload{});
  EXPECT_EQ(report.accesses, 0u);
  EXPECT_EQ(report.total_rounds, 0u);
  EXPECT_DOUBLE_EQ(report.slowdown(), 1.0);
}

}  // namespace
}  // namespace pmtree
