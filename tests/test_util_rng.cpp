#include "pmtree/util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>

namespace pmtree {
namespace {

TEST(Rng, DeterministicStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000007ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Rng rng(11);
  std::array<int, 8> histogram{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) histogram[rng.below(8)] += 1;
  for (const int count : histogram) {
    EXPECT_GT(count, draws / 8 - draws / 32);
    EXPECT_LT(count, draws / 8 + draws / 32);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = rng.between(10, 13);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 13u);
    saw_lo |= x == 10;
    saw_hi |= x == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Consecutive inputs should differ in many bits (avalanche sanity).
  int weak = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const int bits = std::popcount(mix64(x) ^ mix64(x + 1));
    if (bits < 16 || bits > 48) ++weak;
  }
  EXPECT_LT(weak, 20);
}

}  // namespace
}  // namespace pmtree
