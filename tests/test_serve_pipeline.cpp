// Staged-pipeline differential tests (DESIGN.md §14): the PALM-style
// StagedRunner behind Server/Forest must be bit-identical,
// request-for-request, to the frozen single-threaded tick loop
// (pipeline.workers == 0, the differential oracle) at 1, 2 and 8 pipeline
// workers — responses, batches, per-lane trajectories, tick/round counts
// and every metrics section. The ONLY tolerated difference is the
// "pipeline" stage-attribution section of a pipelined report's metrics,
// which measures wall time and is checked for shape instead. Faulted
// configurations must ignore the pipeline knob entirely and reproduce the
// oracle byte-for-byte, extra section included (i.e. without one).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

// ---------------------------------------------------------------------------
// Shared comparison helpers.

void expect_same_responses(const std::vector<Response>& got,
                           const std::vector<Response>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Response& a = got[i];
    const Response& b = want[i];
    ASSERT_EQ(a.client, b.client) << i;
    ASSERT_EQ(a.seq, b.seq) << i;
    ASSERT_EQ(a.status, b.status) << i;
    ASSERT_EQ(a.submit_cycle, b.submit_cycle) << i;
    ASSERT_EQ(a.admitted_cycle, b.admitted_cycle) << i;
    ASSERT_EQ(a.dispatch_cycle, b.dispatch_cycle) << i;
    ASSERT_EQ(a.completion_cycle, b.completion_cycle) << i;
    ASSERT_EQ(a.batch, b.batch) << i;
    ASSERT_EQ(a.retries, b.retries) << i;
  }
}

void expect_same_batches(const std::vector<FormedBatch>& got,
                         const std::vector<FormedBatch>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t b = 0; b < got.size(); ++b) {
    ASSERT_EQ(got[b].id, want[b].id) << b;
    ASSERT_EQ(got[b].formed_cycle, want[b].formed_cycle) << b;
    ASSERT_EQ(got[b].members, want[b].members) << b;
    ASSERT_EQ(got[b].nodes, want[b].nodes) << b;
    ASSERT_EQ(got[b].requested_nodes, want[b].requested_nodes) << b;
    // The resolve stage rebuilt the decomposition off the control plane;
    // it must be the exact C(D, c) the oracle's inline coalesce produced.
    ASSERT_EQ(got[b].decomposition.component_count(),
              want[b].decomposition.component_count())
        << b;
    ASSERT_EQ(got[b].decomposition.nodes(), want[b].decomposition.nodes())
        << b;
  }
}

void expect_same_lanes(const std::vector<engine::EngineResult>& got,
                       const std::vector<engine::EngineResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t l = 0; l < got.size(); ++l) {
    ASSERT_EQ(got[l].to_json().dump(), want[l].to_json().dump()) << "lane "
                                                                 << l;
  }
}

/// The pipelined metrics must equal the oracle's section-for-section,
/// with exactly one extra member allowed: "pipeline" (wall-time stage
/// attribution, the single deliberately non-deterministic export).
void expect_same_metrics_modulo_pipeline(const Json& got, const Json& want) {
  for (const auto& [key, value] : want.members()) {
    if (key == "pipeline") continue;  // both sides pipelined: wall time
    const Json* other = got.find(key);
    ASSERT_NE(other, nullptr) << "missing metrics section " << key;
    ASSERT_EQ(other->dump(), value.dump()) << "metrics section " << key;
  }
  for (const auto& [key, value] : got.members()) {
    (void)value;
    if (key == "pipeline") continue;
    ASSERT_NE(want.find(key), nullptr) << "extra metrics section " << key;
  }
}

/// Satellite contract: the stage-attribution export carries every counter
/// DESIGN.md §14 promises, with values consistent with the run.
void expect_pipeline_stats_shape(const Json& metrics, unsigned workers,
                                 std::uint64_t min_batches) {
  const Json* p = metrics.find("pipeline");
  ASSERT_NE(p, nullptr) << "pipelined run lost its stage attribution";
  ASSERT_EQ(p->find("workers")->as_uint(), workers);
  EXPECT_GE(p->find("rounds")->as_uint(), 1u);
  EXPECT_GE(p->find("batches")->as_uint(), min_batches);
  EXPECT_GE(p->find("max_in_flight")->as_uint(), min_batches > 0 ? 1u : 0u);
  const Json* stages = p->find("stage_ns");
  ASSERT_NE(stages, nullptr);
  for (const char* stage :
       {"control", "resolve", "execute", "drain", "barrier"}) {
    ASSERT_NE(stages->find(stage), nullptr) << stage;
  }
  ASSERT_NE(p->find("simd_kernel"), nullptr);
}

// ---------------------------------------------------------------------------
// Server side.

struct Config {
  std::unique_ptr<CompleteBinaryTree> tree;
  std::unique_ptr<TreeMapping> mapping;
  ServerOptions options;
  std::vector<Request> requests;
  std::unique_ptr<fault::FaultPlan> faults;
};

Config random_config(std::uint64_t seed) {
  Rng rng(seed);
  Config cfg;
  const std::uint32_t levels = static_cast<std::uint32_t>(rng.between(5, 9));
  cfg.tree = std::make_unique<CompleteBinaryTree>(levels);
  const std::uint32_t modules = static_cast<std::uint32_t>(rng.between(3, 17));
  if (rng.chance(1, 2)) {
    cfg.mapping = std::make_unique<ColorMapping>(
        make_optimal_color_mapping(*cfg.tree, modules));
  } else {
    cfg.mapping = std::make_unique<ModuloMapping>(*cfg.tree, modules);
  }

  cfg.options.tick_cycles = rng.between(1, 6);
  cfg.options.replicas = static_cast<std::uint32_t>(rng.between(1, 4));
  cfg.options.admission.queue_bound = rng.between(1, 32);
  cfg.options.admission.overflow =
      rng.chance(1, 2) ? OverflowPolicy::kShed : OverflowPolicy::kBlock;
  cfg.options.batch.max_batch_nodes = rng.between(2, 48);
  cfg.options.batch.max_wait_cycles = rng.between(0, 12);
  cfg.options.engine.sampling =
      engine::EngineOptions::DepthSampling::kStrided;
  cfg.options.engine.sample_stride = 16;
  // Healthy-path retries: a tight attempt timeout makes deep batches
  // overstay their residency budget without any fault plan, so pipelined
  // runs exercise multi-round (retry) serving too.
  if (rng.chance(1, 2)) {
    cfg.options.retry.max_retries = static_cast<std::uint32_t>(rng.between(1, 3));
    cfg.options.retry.attempt_timeout_cycles = rng.between(2, 8);
    cfg.options.retry.backoff_base_cycles = rng.between(1, 6);
    cfg.options.retry.backoff_cap_cycles = 64;
  }
  // Tiny handoff rings sometimes: the control plane must block and drain
  // correctly when the pipeline's queue_depth is the bottleneck.
  if (rng.chance(1, 3)) cfg.options.pipeline.queue_depth = 2;

  const std::size_t count = rng.between(20, 120);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> next_seq(4, 0);
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.below(5);
    Request r;
    r.client = static_cast<std::uint32_t>(rng.below(4));
    r.seq = next_seq[r.client]++;
    r.submit_cycle = clock;
    r.deadline_cycles = rng.chance(1, 4) ? rng.between(1, 20) : 0;
    const std::size_t nodes = rng.below(6);
    for (std::size_t k = 0; k < nodes; ++k) {
      const std::uint32_t level =
          static_cast<std::uint32_t>(rng.below(levels));
      r.nodes.push_back(v(rng.below(pow2(level)), level));
    }
    cfg.requests.push_back(std::move(r));
  }
  return cfg;
}

ServeReport run_server(const Config& cfg, unsigned pipeline_workers) {
  ServerOptions opts = cfg.options;
  opts.pipeline.workers = pipeline_workers;
  if (cfg.faults != nullptr) opts.engine.faults = cfg.faults.get();
  Server server(*cfg.mapping, opts);
  for (const Request& r : cfg.requests) server.submit(r);
  return server.run();
}

void expect_same_serve_report(const ServeReport& got, const ServeReport& want) {
  expect_same_responses(got.responses, want.responses);
  expect_same_batches(got.batches, want.batches);
  expect_same_lanes(got.replicas, want.replicas);
  ASSERT_EQ(got.ticks, want.ticks);
  ASSERT_EQ(got.rounds, want.rounds);
  ASSERT_EQ(got.final_cycle, want.final_cycle);
  expect_same_metrics_modulo_pipeline(got.metrics, want.metrics);
}

TEST(ServePipeline, ServerMatchesOracleAtEveryWorkerCount) {
  std::uint64_t total_rounds = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Config cfg = random_config(seed * 6700417);
    const ServeReport oracle = run_server(cfg, 0);
    ASSERT_EQ(oracle.count(RequestStatus::kOk) +
                  oracle.count(RequestStatus::kShed) +
                  oracle.count(RequestStatus::kExpired),
              cfg.requests.size());
    ASSERT_TRUE(oracle.metrics.find("pipeline") == nullptr)
        << "oracle reports must not grow a pipeline section";
    total_rounds += oracle.rounds;

    for (const unsigned workers : {1u, 2u, 8u}) {
      SCOPED_TRACE("pipeline_workers=" + std::to_string(workers));
      const ServeReport piped = run_server(cfg, workers);
      expect_same_serve_report(piped, oracle);
      expect_pipeline_stats_shape(piped.metrics, workers,
                                  oracle.batches.size());
    }
  }
  // The tight healthy-path retry policies actually fired somewhere:
  // multi-round pipelined serving was exercised, not just single rounds.
  EXPECT_GT(total_rounds, 12u);
}

TEST(ServePipeline, FaultedServerIgnoresPipelineAndMatchesOracleExactly) {
  for (std::uint64_t seed : {3u, 8u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Config cfg = random_config(seed * 2654435761u);
    Rng rng(seed ^ 0xFA017u);
    fault::FaultPlan::RandomOptions fopts;
    fopts.seed = rng();
    fopts.modules = cfg.mapping->num_modules();
    fopts.fail_fraction = 0.25;
    fopts.fail_window = 64;
    fopts.slowdown_count = 2;
    fopts.slowdown_window = 256;
    fopts.slowdown_max_length = 128;
    fopts.slowdown_max_period = 4;
    cfg.faults =
        std::make_unique<fault::FaultPlan>(fault::FaultPlan::random(fopts));
    cfg.options.retry.max_retries = 2;
    cfg.options.retry.attempt_timeout_cycles = 8;

    // Pipeline requested but faults present: the oracle path must run,
    // byte-for-byte — including the absence of a "pipeline" section.
    const ServeReport oracle = run_server(cfg, 0);
    const ServeReport piped = run_server(cfg, 8);
    ASSERT_EQ(piped.to_json().dump(), oracle.to_json().dump());
    ASSERT_TRUE(piped.metrics.find("pipeline") == nullptr);
  }
}

TEST(ServePipeline, EmptyFaultPlanStaysOnThePipeline) {
  // An EMPTY plan is healthy (the engine treats it as no plan); the
  // dispatch gate must agree and keep the staged path.
  Config cfg = random_config(0xE0F11);
  cfg.faults = std::make_unique<fault::FaultPlan>();
  const ServeReport oracle = run_server(cfg, 0);
  const ServeReport piped = run_server(cfg, 2);
  expect_same_serve_report(piped, oracle);
  expect_pipeline_stats_shape(piped.metrics, 2, oracle.batches.size());
}

TEST(ServePipeline, RepeatedRunsReuseTheWarmRunner) {
  // Two runs on one Server (the runner persists between them) must match
  // two runs on one oracle Server — including the second run's metrics,
  // which accumulate over the registry in both worlds. An intervening
  // empty run() (zero requests) must be harmless.
  const Config cfg = random_config(0x9E3779B9);
  ServerOptions oracle_opts = cfg.options;
  Server oracle_server(*cfg.mapping, oracle_opts);
  ServerOptions piped_opts = cfg.options;
  piped_opts.pipeline.workers = 2;
  Server piped_server(*cfg.mapping, piped_opts);

  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("run=" + std::to_string(round));
    for (const Request& r : cfg.requests) {
      oracle_server.submit(r);
      piped_server.submit(r);
    }
    const ServeReport want = oracle_server.run();
    const ServeReport got = piped_server.run();
    expect_same_serve_report(got, want);
    if (round == 0) {
      const ServeReport idle = piped_server.run();  // nothing submitted
      EXPECT_TRUE(idle.responses.empty());
      EXPECT_TRUE(idle.batches.empty());
      const ServeReport idle_want = oracle_server.run();
      expect_same_serve_report(idle, idle_want);
    }
  }
}

TEST(ServePipeline, ConcurrentSubmissionMatchesSequential) {
  const Config cfg = random_config(0xC0FFEE7);
  const ServeReport sequential = run_server(cfg, 1);

  ServerOptions opts = cfg.options;
  opts.pipeline.workers = 8;
  Server server(*cfg.mapping, opts);
  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = t; i < cfg.requests.size(); i += 4) {
        server.submit(cfg.requests[i]);
      }
    });
  }
  for (auto& th : submitters) th.join();
  expect_same_serve_report(server.run(), sequential);
}

// ---------------------------------------------------------------------------
// Forest side.

struct TenantConfig {
  std::unique_ptr<CompleteBinaryTree> tree;
  std::unique_ptr<TreeMapping> mapping;
  TenantOptions options;
  std::vector<Request> requests;
  std::unique_ptr<fault::FaultPlan> faults;
};

struct ForestConfig {
  ForestOptions options;
  std::vector<TenantConfig> tenants;
};

ForestConfig random_forest(std::uint64_t seed) {
  Rng rng(seed);
  ForestConfig cfg;
  cfg.options.tick_cycles = rng.between(1, 6);
  cfg.options.replicas = static_cast<std::uint32_t>(rng.between(1, 6));
  cfg.options.drr_quantum_nodes = rng.between(8, 48);
  const std::size_t tenant_count = rng.between(2, 6);
  cfg.options.global_queue_bound =
      rng.chance(1, 2) ? rng.between(tenant_count, 48) : 0;
  if (rng.chance(1, 3)) cfg.options.pipeline.queue_depth = 2;

  for (std::size_t i = 0; i < tenant_count; ++i) {
    TenantConfig t;
    const std::uint32_t levels = static_cast<std::uint32_t>(rng.between(4, 9));
    t.tree = std::make_unique<CompleteBinaryTree>(levels);
    const std::uint32_t modules =
        static_cast<std::uint32_t>(rng.between(3, 17));
    if (rng.chance(1, 2)) {
      t.mapping = std::make_unique<ColorMapping>(
          make_optimal_color_mapping(*t.tree, modules));
    } else {
      t.mapping = std::make_unique<ModuloMapping>(*t.tree, modules);
    }
    t.options.rate = static_cast<double>(rng.between(1, 8));
    t.options.weight = rng.between(1, 5);
    t.options.admission.queue_bound = rng.between(1, 24);
    t.options.admission.overflow =
        rng.chance(1, 2) ? OverflowPolicy::kShed : OverflowPolicy::kBlock;
    t.options.batch.max_batch_nodes = rng.between(2, 40);
    t.options.batch.max_wait_cycles = rng.between(0, 10);
    t.options.engine.sampling = engine::EngineOptions::DepthSampling::kStrided;
    t.options.engine.sample_stride = 16;
    if (rng.chance(1, 3)) {
      t.options.retry.max_retries = static_cast<std::uint32_t>(rng.between(1, 2));
      t.options.retry.attempt_timeout_cycles = rng.between(2, 8);
    }

    const std::size_t count = rng.between(8, 36);
    const std::uint32_t clients =
        static_cast<std::uint32_t>(rng.between(1, 3));
    std::uint64_t clock = rng.below(16);
    std::vector<std::uint64_t> next_seq(clients, 0);
    for (std::size_t k = 0; k < count; ++k) {
      clock += rng.below(4);
      Request r;
      r.client = static_cast<std::uint32_t>(rng.below(clients));
      r.seq = next_seq[r.client]++;
      r.submit_cycle = clock;
      r.deadline_cycles = rng.chance(1, 4) ? rng.between(2, 24) : 0;
      const std::size_t nodes = rng.below(6);
      for (std::size_t n = 0; n < nodes; ++n) {
        const std::uint32_t level =
            static_cast<std::uint32_t>(rng.below(levels));
        r.nodes.push_back(v(rng.below(pow2(level)), level));
      }
      t.requests.push_back(std::move(r));
    }
    cfg.tenants.push_back(std::move(t));
  }
  return cfg;
}

ForestReport run_forest(const ForestConfig& cfg, unsigned pipeline_workers) {
  ForestOptions opts = cfg.options;
  opts.pipeline.workers = pipeline_workers;
  Forest forest(opts);
  for (const TenantConfig& t : cfg.tenants) {
    TenantOptions topts = t.options;
    if (t.faults != nullptr) topts.engine.faults = t.faults.get();
    forest.add_tenant(*t.mapping, std::move(topts));
  }
  for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
    for (const Request& r : cfg.tenants[i].requests) {
      forest.submit(static_cast<std::uint32_t>(i), r);
    }
  }
  return forest.run();
}

void expect_same_forest_report(const ForestReport& got,
                               const ForestReport& want) {
  ASSERT_EQ(got.tenants.size(), want.tenants.size());
  for (std::size_t i = 0; i < got.tenants.size(); ++i) {
    SCOPED_TRACE("tenant=" + std::to_string(i));
    const TenantReport& a = got.tenants[i];
    const TenantReport& b = want.tenants[i];
    ASSERT_EQ(a.name, b.name);
    expect_same_responses(a.responses, b.responses);
    expect_same_batches(a.batches, b.batches);
    expect_same_lanes(a.lanes, b.lanes);
    ASSERT_EQ(a.served_nodes, b.served_nodes);
    // Tenant metric sections never carry pipeline wall-time; they must be
    // identical outright.
    ASSERT_EQ(a.metrics.dump(), b.metrics.dump());
  }
  ASSERT_EQ(got.ticks, want.ticks);
  ASSERT_EQ(got.rounds, want.rounds);
  ASSERT_EQ(got.final_cycle, want.final_cycle);
  ASSERT_EQ(got.plan.to_json().dump(), want.plan.to_json().dump());
  // The rollup: "tenants" and "plan" identical; the "forest" aggregate is
  // identical modulo its stage-attribution section.
  const Json* got_forest = got.metrics.find("forest");
  const Json* want_forest = want.metrics.find("forest");
  ASSERT_NE(got_forest, nullptr);
  ASSERT_NE(want_forest, nullptr);
  expect_same_metrics_modulo_pipeline(*got_forest, *want_forest);
  ASSERT_EQ(got.metrics.find("tenants")->dump(),
            want.metrics.find("tenants")->dump());
  ASSERT_EQ(got.metrics.find("plan")->dump(),
            want.metrics.find("plan")->dump());
}

TEST(ServePipeline, ForestMatchesOracleAtEveryWorkerCount) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ForestConfig cfg = random_forest(seed * 7919);
    const ForestReport oracle = run_forest(cfg, 0);
    std::size_t total = 0;
    for (const TenantConfig& t : cfg.tenants) total += t.requests.size();
    ASSERT_EQ(oracle.count(RequestStatus::kOk) +
                  oracle.count(RequestStatus::kShed) +
                  oracle.count(RequestStatus::kExpired),
              total);

    for (const unsigned workers : {1u, 2u, 8u}) {
      SCOPED_TRACE("pipeline_workers=" + std::to_string(workers));
      const ForestReport piped = run_forest(cfg, workers);
      expect_same_forest_report(piped, oracle);
      std::uint64_t batches = 0;
      for (const TenantReport& t : oracle.tenants) batches += t.batches.size();
      expect_pipeline_stats_shape(*piped.metrics.find("forest"), workers,
                                  batches);
    }
  }
}

TEST(ServePipeline, ForestWithAnyFaultedTenantFallsBackToOracle) {
  ForestConfig cfg = random_forest(0xF0BE57);
  Rng rng(0xF0BE57);
  // One faulted tenant anywhere poisons the whole forest's pipeline
  // eligibility (lanes share the runner; degraded lanes need the
  // monolithic engine's reroute loop).
  TenantConfig& t = cfg.tenants[1];
  fault::FaultPlan::RandomOptions fopts;
  fopts.seed = rng();
  fopts.modules = t.mapping->num_modules();
  fopts.fail_fraction = 0.25;
  fopts.fail_window = 64;
  fopts.slowdown_count = 2;
  fopts.slowdown_window = 256;
  fopts.slowdown_max_length = 128;
  fopts.slowdown_max_period = 4;
  t.faults =
      std::make_unique<fault::FaultPlan>(fault::FaultPlan::random(fopts));
  t.options.retry.max_retries = 2;
  t.options.retry.attempt_timeout_cycles = 8;

  const ForestReport oracle = run_forest(cfg, 0);
  const ForestReport piped = run_forest(cfg, 8);
  ASSERT_EQ(piped.to_json().dump(), oracle.to_json().dump());
  ASSERT_TRUE(piped.metrics.find("forest")->find("pipeline") == nullptr);
}

}  // namespace
}  // namespace pmtree::serve
