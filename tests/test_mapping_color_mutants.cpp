// Failure injection: the paper's description of Gamma(i, j) ("the path
// from the root of B(i', j-1) to the root of B(i, j)") names N-k+1 nodes
// for an N-k slot list, so an implementation must pick a reading. These
// tests show the exhaustive conflict-freeness suite *distinguishes* the
// readings: the kCorrect variant passes (see test_mapping_color.cpp) while
// both mutants produce conflicts on the very templates Theorem 3 covers —
// i.e. the test suite would have caught the wrong choice.
#include <gtest/gtest.h>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

using internal::GammaVariant;

struct MutantCase {
  GammaVariant variant;
  const char* label;
};

class GammaMutants : public ::testing::TestWithParam<MutantCase> {};

TEST_P(GammaMutants, MutantViolatesTheorem3Somewhere) {
  const auto [variant, label] = GetParam();
  bool caught = false;
  // Sweep a few configurations; a mutant must fail at least one.
  const struct {
    std::uint32_t levels, N, k;
  } configs[] = {{8, 4, 2}, {9, 5, 3}, {11, 5, 2}, {12, 6, 3}};
  for (const auto& cfg : configs) {
    const ColorMapping map(CompleteBinaryTree(cfg.levels), cfg.N, cfg.k, variant);
    const auto s = evaluate_subtrees(map, tree_size(cfg.k));
    const auto p = evaluate_paths(map, cfg.N);
    if (s.max_conflicts > 0 || p.max_conflicts > 0) {
      caught = true;
      break;
    }
  }
  EXPECT_TRUE(caught) << "mutant '" << label
                      << "' was not detected by the CF sweep";
}

TEST_P(GammaMutants, MutantStaysWithinModuleRange) {
  // Even wrong Gamma readings must still produce legal colors; this pins
  // down that the mutants model *semantic* bugs, not crashes.
  const auto [variant, label] = GetParam();
  const CompleteBinaryTree tree(10);
  const ColorMapping map(tree, 5, 2, variant);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_LT(map.color_of(node_at(id)), map.num_modules()) << label;
  }
}

TEST_P(GammaMutants, MutantLazyStillMatchesItsOwnEagerTable) {
  // The lazy/eager cross-check is independent of the Gamma reading: both
  // paths must implement the same (possibly wrong) mapping.
  const auto [variant, label] = GetParam();
  const CompleteBinaryTree tree(11);
  const ColorMapping map(tree, 5, 2, variant);
  const auto table = map.materialize();
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    ASSERT_EQ(map.color_of(node_at(id)), table[id]) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GammaMutants,
    ::testing::Values(MutantCase{GammaVariant::kIncludeChildRoot,
                                 "include-child-root"},
                      MutantCase{GammaVariant::kReversed, "reversed"}),
    [](const auto& param_info) { return std::string(param_info.param.label) == "reversed"
                               ? "Reversed"
                               : "IncludeChildRoot"; });

}  // namespace
}  // namespace pmtree
