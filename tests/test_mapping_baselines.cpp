// Baseline mappings: legality, determinism, and the *negative* results the
// paper's comparison needs — naive schemes are far from conflict-free on
// the very templates COLOR handles for free.
#include "pmtree/mapping/baselines.hpp"

#include <gtest/gtest.h>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(Baselines, ColorsWithinRangeAndDeterministic) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping mod(tree, 7);
  const LevelShiftMapping shift(tree, 7);
  const RandomMapping rnd(tree, 7, 42);
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    const Node n = node_at(id);
    ASSERT_LT(mod.color_of(n), 7u);
    ASSERT_LT(shift.color_of(n), 7u);
    ASSERT_LT(rnd.color_of(n), 7u);
    ASSERT_EQ(rnd.color_of(n), rnd.color_of(n));
  }
}

TEST(Baselines, RandomMappingSeedChangesColors) {
  const CompleteBinaryTree tree(10);
  const RandomMapping a(tree, 31, 1);
  const RandomMapping b(tree, 31, 2);
  std::uint64_t differing = 0;
  for (std::uint64_t id = 0; id < tree.size(); ++id) {
    if (a.color_of(node_at(id)) != b.color_of(node_at(id))) ++differing;
  }
  EXPECT_GT(differing, tree.size() / 2);
}

TEST(Baselines, ModuloIsPerfectOnLevelRunsButBadOnPaths) {
  const CompleteBinaryTree tree(12);
  const std::uint32_t M = 7;
  const ModuloMapping map(tree, M);
  // Consecutive BFS ids: any run of <= M nodes in a level is rainbow.
  EXPECT_EQ(evaluate_level_runs(map, M).max_conflicts, 0u);
  // Paths, however, conflict: e.g. the leftmost path visits ids 2^j - 1,
  // which repeat residues mod 7 (2^j mod 7 cycles with period 3).
  EXPECT_GT(evaluate_paths(map, M).max_conflicts, 0u);
}

TEST(Baselines, LevelShiftIsPerfectOnShortLevelRunsButBadOnSubtrees) {
  const CompleteBinaryTree tree(12);
  const std::uint32_t M = 7;
  const LevelShiftMapping map(tree, M);
  EXPECT_EQ(evaluate_level_runs(map, M).max_conflicts, 0u);
  EXPECT_GT(evaluate_subtrees(map, M).max_conflicts, 0u);
}

TEST(Baselines, LevelModIsConflictFreeOnPathsOnly) {
  // The Section 1.2 "specialist": CF on P(M) with just M modules, but the
  // worst possible on level runs (a run lives on ONE module) and bad on
  // subtrees (each level of the subtree collapses to one module).
  const CompleteBinaryTree tree(12);
  const std::uint32_t M = 7;
  const LevelModMapping map(tree, M);
  EXPECT_EQ(evaluate_paths(map, M).max_conflicts, 0u);
  EXPECT_EQ(evaluate_level_runs(map, M).max_conflicts, M - 1);
  // S(7) has 4 leaves on one module: 3 conflicts.
  EXPECT_EQ(evaluate_subtrees(map, 7).max_conflicts, 3u);
}

TEST(Baselines, LevelModConflictsOnPathsLongerThanM) {
  const CompleteBinaryTree tree(12);
  const LevelModMapping map(tree, 7);
  EXPECT_EQ(evaluate_paths(map, 8).max_conflicts, 1u);
  EXPECT_EQ(evaluate_paths(map, 12).max_conflicts, 1u);
}

TEST(Baselines, RandomIsNowhereConflictFreeAtSizeM) {
  const CompleteBinaryTree tree(16);  // P(15) needs at least 15 levels
  const std::uint32_t M = 15;
  const RandomMapping map(tree, M, 7);
  // Balls-in-bins: with thousands of instances of size M over M bins,
  // conflicts are essentially certain for every family.
  EXPECT_GT(evaluate_paths(map, M).max_conflicts, 0u);
  EXPECT_GT(evaluate_subtrees(map, M).max_conflicts, 0u);
  EXPECT_GT(evaluate_level_runs(map, M).max_conflicts, 0u);
}

}  // namespace
}  // namespace pmtree
