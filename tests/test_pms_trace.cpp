#include "pmtree/pms/trace.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"

namespace pmtree {
namespace {

TEST(Trace, RecordsEveryAccessInOrder) {
  const CompleteBinaryTree tree(10);
  const ColorMapping map(tree, 5, 2);
  const auto workload = Workload::paths(tree, 5, 50, 1);
  const Trace trace = run_traced(map, workload);
  ASSERT_EQ(trace.entries().size(), 50u);
  for (std::size_t i = 0; i < trace.entries().size(); ++i) {
    EXPECT_EQ(trace.entries()[i].access_id, i);
    EXPECT_EQ(trace.entries()[i].requests, 5u);
    EXPECT_EQ(trace.entries()[i].rounds, 1u);  // CF paths
    EXPECT_EQ(trace.entries()[i].conflicts, 0u);
  }
  EXPECT_EQ(trace.round_stats().max(), 1u);
}

TEST(Trace, TrafficSumsToRequests) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  const auto workload = Workload::subtrees(tree, 7, 40, 2);
  const Trace trace = run_traced(map, workload);
  const auto total = std::accumulate(trace.traffic().begin(),
                                     trace.traffic().end(), std::uint64_t{0});
  EXPECT_EQ(total, 40u * 7u);
}

TEST(Trace, SlowerThanFiltersOutliers) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  const auto workload = Workload::paths(tree, 7, 100, 3);
  const Trace trace = run_traced(map, workload);
  const auto slow = trace.slower_than(1);
  EXPECT_FALSE(slow.empty());  // modulo conflicts on paths
  for (const auto& e : slow) EXPECT_GT(e.rounds, 1u);
  EXPECT_TRUE(trace.slower_than(7).empty());  // can't exceed path length
}

TEST(Trace, CsvShape) {
  const CompleteBinaryTree tree(6);
  const ModuloMapping map(tree, 3);
  const auto workload = Workload::paths(tree, 3, 2, 4);
  const Trace trace = run_traced(map, workload);
  std::ostringstream oss;
  trace.print_csv(oss);
  const std::string csv = oss.str();
  EXPECT_NE(csv.find("access_id,requests,rounds,conflicts\n"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(Trace, JsonMatchesEntriesAndTraffic) {
  const CompleteBinaryTree tree(10);
  const ModuloMapping map(tree, 7);
  const auto workload = Workload::mixed(tree, 7, 25, 11);
  const Trace trace = run_traced(map, workload);
  const Json json = trace.to_json();
  ASSERT_EQ(json.find("accesses")->as_uint(), trace.entries().size());
  const Json* entries = json.find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->items().size(), trace.entries().size());
  for (std::size_t i = 0; i < trace.entries().size(); ++i) {
    const Json& e = entries->items()[i];
    EXPECT_EQ(e.find("access_id")->as_uint(), trace.entries()[i].access_id);
    EXPECT_EQ(e.find("requests")->as_uint(), trace.entries()[i].requests);
    EXPECT_EQ(e.find("rounds")->as_uint(), trace.entries()[i].rounds);
    EXPECT_EQ(e.find("conflicts")->as_uint(), trace.entries()[i].conflicts);
  }
  const Json* traffic = json.find("traffic");
  ASSERT_NE(traffic, nullptr);
  ASSERT_EQ(traffic->items().size(), trace.traffic().size());
  for (std::size_t m = 0; m < trace.traffic().size(); ++m) {
    EXPECT_EQ(traffic->items()[m].as_uint(), trace.traffic()[m]);
  }
  EXPECT_EQ(json.find("rounds")->find("total")->as_uint(),
            trace.round_stats().sum());
  EXPECT_EQ(json.find("rounds")->find("max")->as_uint(),
            trace.round_stats().max());
}

TEST(Trace, JsonRoundTripsThroughParser) {
  // The serialized trace re-parses to the identical Json value, both
  // compact and pretty-printed — trace artifacts share the engine
  // snapshot format's lossless round-trip guarantee.
  const CompleteBinaryTree tree(8);
  const ModuloMapping map(tree, 5);
  const auto workload = Workload::paths(tree, 5, 12, 9);
  const Json json = run_traced(map, workload).to_json();
  const auto compact = Json::parse(json.dump());
  ASSERT_TRUE(compact.has_value());
  EXPECT_EQ(*compact, json);
  const auto pretty = Json::parse(json.dump(2));
  ASSERT_TRUE(pretty.has_value());
  EXPECT_EQ(*pretty, json);
  // Empty trace is still a well-formed document.
  const Json empty = run_traced(map, Workload{}).to_json();
  EXPECT_EQ(empty.find("accesses")->as_uint(), 0u);
  ASSERT_TRUE(Json::parse(empty.dump()).has_value());
}

TEST(LatencyModel, AccessCost) {
  const LatencyModel model{40, 100};
  EXPECT_EQ(model.access_ns(1), 140u);
  EXPECT_EQ(model.access_ns(3), 340u);
  EXPECT_EQ(model.access_ns(0), 40u);
}

TEST(LatencyModel, ConflictFreeTraceHasFactorOne) {
  const CompleteBinaryTree tree(10);
  const ColorMapping map(tree, 5, 2);
  const auto workload = Workload::paths(tree, 5, 30, 5);
  const auto est = LatencyModel{}.estimate(run_traced(map, workload));
  EXPECT_EQ(est.total_ns, est.conflict_free_ns);
  EXPECT_DOUBLE_EQ(est.overhead_factor(), 1.0);
}

TEST(LatencyModel, ConflictTaxShowsUpForNaiveMapping) {
  const CompleteBinaryTree tree(12);
  const std::uint32_t M = 10;
  const ColorMapping good(tree, 5, 2);          // 10 modules, CF on P(5)
  const ModuloMapping bad(tree, M);
  const auto workload = Workload::paths(tree, 5, 500, 6);
  const LatencyModel model{};
  const auto good_est = model.estimate(run_traced(good, workload));
  const auto bad_est = model.estimate(run_traced(bad, workload));
  EXPECT_DOUBLE_EQ(good_est.overhead_factor(), 1.0);
  EXPECT_GT(bad_est.overhead_factor(), 1.1);
  EXPECT_GT(bad_est.total_ns, good_est.total_ns);
}

}  // namespace
}  // namespace pmtree
