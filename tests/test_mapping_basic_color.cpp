// BASIC-COLOR (single-block) correctness: the hand-checkable examples from
// the paper's Section 3.1, cross-validation of lazy retrieval against the
// eager BOTTOM simulation, and the conflict-freeness guarantees of
// Theorem 1 / Lemma 1 / Lemma 2 on exhaustive template families.
#include "pmtree/mapping/color.hpp"

#include <gtest/gtest.h>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/verify.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(BasicColor, SigmaPhaseColorsTopLevelsWithBfsIds) {
  // Paper line 6: color v(i, j) with color 2^j + i - 1, i.e. bfs_id.
  const BasicColorMapping map(CompleteBinaryTree(5), 5, 3);
  for (std::uint32_t j = 0; j < 3; ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      EXPECT_EQ(map.color_of(v(i, j)), bfs_id(v(i, j)));
    }
  }
}

TEST(BasicColor, HandWorkedExampleK3N4) {
  // N = 4, k = 2 (K = 3): 5 colors. Worked by hand from the pseudocode.
  const BasicColorMapping map(CompleteBinaryTree(4), 4, 2);
  EXPECT_EQ(map.num_modules(), 5u);

  EXPECT_EQ(map.color_of(v(0, 0)), 0u);
  EXPECT_EQ(map.color_of(v(0, 1)), 1u);
  EXPECT_EQ(map.color_of(v(1, 1)), 2u);

  // Level 2: block 0 copies the sibling subtree root's color (v(1,1)=2)
  // then takes Gamma[0]=3; block 1 copies v(0,1)=1 then Gamma[0]=3.
  EXPECT_EQ(map.color_of(v(0, 2)), 2u);
  EXPECT_EQ(map.color_of(v(1, 2)), 3u);
  EXPECT_EQ(map.color_of(v(2, 2)), 1u);
  EXPECT_EQ(map.color_of(v(3, 2)), 3u);

  // Level 3: sibling-subtree roots are the level-2 nodes; Gamma[1]=4.
  EXPECT_EQ(map.color_of(v(0, 3)), 3u);
  EXPECT_EQ(map.color_of(v(1, 3)), 4u);
  EXPECT_EQ(map.color_of(v(2, 3)), 2u);
  EXPECT_EQ(map.color_of(v(3, 3)), 4u);
  EXPECT_EQ(map.color_of(v(4, 3)), 3u);
  EXPECT_EQ(map.color_of(v(5, 3)), 4u);
  EXPECT_EQ(map.color_of(v(6, 3)), 1u);
  EXPECT_EQ(map.color_of(v(7, 3)), 4u);
}

TEST(BasicColor, DegenerateK1ColorsByLevel) {
  // k = 1: every block is one node, so level j gets the single color
  // Gamma[j-1] = j: the mapping degenerates to color = level.
  const BasicColorMapping map(CompleteBinaryTree(6), 6, 1);
  EXPECT_EQ(map.num_modules(), 6u);
  for (std::uint32_t j = 0; j < 6; ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      EXPECT_EQ(map.color_of(v(i, j)), j);
    }
  }
}

TEST(BasicColor, LazyRetrievalMatchesEagerTable) {
  for (std::uint32_t k = 1; k <= 4; ++k) {
    for (std::uint32_t N = k; N <= k + 5 && N <= 10; ++N) {
      const CompleteBinaryTree tree(N);
      const BasicColorMapping map(tree, N, k);
      const auto table = map.materialize();
      ASSERT_EQ(table.size(), tree.size());
      for (std::uint64_t id = 0; id < tree.size(); ++id) {
        ASSERT_EQ(map.color_of(node_at(id)), table[id])
            << "N=" << N << " k=" << k << " node " << to_string(node_at(id));
      }
    }
  }
}

TEST(BasicColor, UsesExactlyTheAnnouncedColors) {
  const BasicColorMapping map(CompleteBinaryTree(7), 7, 3);
  const auto table = map.materialize();
  std::vector<bool> seen(map.num_modules(), false);
  for (const Color c : table) {
    ASSERT_LT(c, map.num_modules());
    seen[c] = true;
  }
  for (std::uint32_t c = 0; c < map.num_modules(); ++c) {
    EXPECT_TRUE(seen[c]) << "color " << c << " never used";
  }
}

// --- Theorem 1: (N + K - k)-conflict-free on S(K) and P(N). -------------

struct BasicColorParams {
  std::uint32_t N;
  std::uint32_t k;
};

class BasicColorTheorem1 : public ::testing::TestWithParam<BasicColorParams> {};

TEST_P(BasicColorTheorem1, ConflictFreeOnSubtreesAndPaths) {
  const auto [N, k] = GetParam();
  const CompleteBinaryTree tree(N);
  const BasicColorMapping map(tree, N, k);
  const auto verdict = verify_cf_elementary(map, tree_size(k), N);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST_P(BasicColorTheorem1, ConflictFreeOnEveryTpFamily) {
  // Lemma 1: CF on TP(K, j) for every j <= N.
  const auto [N, k] = GetParam();
  const CompleteBinaryTree tree(N);
  const BasicColorMapping map(tree, N, k);
  const auto verdict = verify_tp_rainbow(map, tree_size(k), N);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST_P(BasicColorTheorem1, LevelTemplateCostAtMostOne) {
  // Lemma 2: at most 1 conflict on L(K).
  const auto [N, k] = GetParam();
  const CompleteBinaryTree tree(N);
  const BasicColorMapping map(tree, N, k);
  const auto verdict = verify_level_cost(map, tree_size(k), 1);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasicColorTheorem1,
    ::testing::Values(BasicColorParams{1, 1}, BasicColorParams{3, 1},
                      BasicColorParams{6, 1}, BasicColorParams{2, 2},
                      BasicColorParams{4, 2}, BasicColorParams{7, 2},
                      BasicColorParams{10, 2}, BasicColorParams{3, 3},
                      BasicColorParams{5, 3}, BasicColorParams{8, 3},
                      BasicColorParams{11, 3}, BasicColorParams{4, 4},
                      BasicColorParams{6, 4}, BasicColorParams{9, 4},
                      BasicColorParams{12, 4}, BasicColorParams{5, 5},
                      BasicColorParams{10, 5}),
    [](const auto& param_info) {
      return "N" + std::to_string(param_info.param.N) + "_k" +
             std::to_string(param_info.param.k);
    });

}  // namespace
}  // namespace pmtree
