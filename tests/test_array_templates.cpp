#include "pmtree/array/array2d.hpp"

#include <gtest/gtest.h>

namespace pmtree {
namespace {

TEST(Array2D, ShapeQueries) {
  const Array2D array(8, 12);
  EXPECT_EQ(array.rows(), 8u);
  EXPECT_EQ(array.cols(), 12u);
  EXPECT_EQ(array.size(), 96u);
  EXPECT_TRUE(array.contains(Cell{7, 11}));
  EXPECT_FALSE(array.contains(Cell{8, 0}));
  EXPECT_FALSE(array.contains(Cell{0, 12}));
}

TEST(RunInstance, RowRun) {
  const RunInstance run{Cell{2, 3}, RunDirection::kRow, 4};
  const auto cells = run.cells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], (Cell{2, 3}));
  EXPECT_EQ(cells[3], (Cell{2, 6}));
  EXPECT_TRUE(run.fits(Array2D(4, 7)));
  EXPECT_FALSE(run.fits(Array2D(4, 6)));  // last col would be 6
}

TEST(RunInstance, ColumnRun) {
  const RunInstance run{Cell{1, 5}, RunDirection::kColumn, 3};
  const auto cells = run.cells();
  EXPECT_EQ(cells[2], (Cell{3, 5}));
  EXPECT_TRUE(run.fits(Array2D(4, 6)));
  EXPECT_FALSE(run.fits(Array2D(3, 6)));
}

TEST(RunInstance, DiagonalRuns) {
  const RunInstance diag{Cell{1, 1}, RunDirection::kDiagonal, 3};
  EXPECT_EQ(diag.cells()[2], (Cell{3, 3}));
  EXPECT_TRUE(diag.fits(Array2D(4, 4)));
  EXPECT_FALSE(diag.fits(Array2D(4, 3)));

  const RunInstance anti{Cell{0, 3}, RunDirection::kAntiDiagonal, 4};
  EXPECT_EQ(anti.cells()[3], (Cell{3, 0}));
  EXPECT_TRUE(anti.fits(Array2D(4, 4)));
  // Would need start.col >= 4 to take 5 steps left.
  EXPECT_FALSE((RunInstance{Cell{0, 3}, RunDirection::kAntiDiagonal, 5}
                    .fits(Array2D(8, 8))));
}

TEST(RunInstance, ZeroSizeNeverFits) {
  EXPECT_FALSE((RunInstance{Cell{0, 0}, RunDirection::kRow, 0}.fits(Array2D(4, 4))));
}

TEST(SubarrayInstance, CellsRowMajorAndFits) {
  const SubarrayInstance block{Cell{1, 2}, 2, 3};
  const auto cells = block.cells();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0], (Cell{1, 2}));
  EXPECT_EQ(cells[2], (Cell{1, 4}));
  EXPECT_EQ(cells[3], (Cell{2, 2}));
  EXPECT_TRUE(block.fits(Array2D(3, 5)));
  EXPECT_FALSE(block.fits(Array2D(3, 4)));
  EXPECT_FALSE(block.fits(Array2D(2, 5)));
}

TEST(Array2D, DirectionNames) {
  EXPECT_STREQ(to_string(RunDirection::kRow), "row");
  EXPECT_STREQ(to_string(RunDirection::kAntiDiagonal), "antidiagonal");
  EXPECT_EQ(to_string(Cell{3, 4}), "(3, 4)");
}

}  // namespace
}  // namespace pmtree
