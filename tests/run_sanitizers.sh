#!/usr/bin/env bash
# Runs the pmtree test suite under ASan, UBSan and TSan via the
# CMakePresets.json configurations. The suite must be green under all
# three; TSan in particular covers ParallelAccessSimulator's worker merge,
# the cycle engine, the parallel cost evaluators (test_analysis_parallel
# runs them at 1/2/8 threads), the sharded engine runner
# (test_engine_sharded drives ShardedEngineRunner at 1/2/8 worker threads
# and asserts bit-identical merges, so any data race in the per-shard
# slot writes or the fold shows up both as a TSan report and as a
# mismatch), the lazy batch-accelerator publication
# (test_mapping_batch's ConcurrentFirstUseIsConsistent races four threads
# on a cold ColorMapping), and the serve front-end
# (test_serve_differential races four submitter threads into Server's
# striped-inbox MPSC path and then runs the replica phase at 1/2/8
# workers, asserting responses bit-identical to the single-threaded
# oracle), and degraded mode (test_engine_faults runs the fault-injected
# sharded engine at 1/2/8 threads; test_serve_differential's faulted
# configs re-run replicas across retry rounds at 1/2/8 workers — a data
# race in the fault path or the round fold shows up as a report and as a
# bit-identity mismatch), and multi-tenant serving (test_serve_forest
# races four submitter threads into Forest's striped inboxes in
# ConcurrentSubmissionMatchesSequential and runs every differential
# config's lane execution at 1/2/8 workers — a race in the shared-pool
# admission, the DRR batch formation, or the per-tenant lane fold shows
# up as a TSan report and as a divergence from the 1-worker oracle), and
# the staged serve pipeline (test_serve_pipeline drives StagedRunner's
# SPSC token rings, ready-flag handoff, overflow spill/pump, and round
# barrier at 1/2/8 pipeline workers against the frozen tick-loop oracle —
# a race in the ring cursors, the pooled token reuse, the resolve/execute
# ordering edge, or the barrier handshake shows up as a TSan report and
# as a bit-identity mismatch; the `pipeline` ctest label selects the
# suite on its own), and skew-adaptive migration (test_serve_migration
# runs migrated serving at 1/2/8 replica workers and 1/2/8 pipeline
# workers against the single-threaded oracle, drives the sharded engine
# over a MigratedMapping at 1/2/8 threads, and asserts the epoch audit
# trail identical — a race between the control-plane planner and the
# worker-side epoch-mapping reads shows up as a TSan report and as a
# divergent rotation table; the `migration` ctest label selects the
# mapping + serve migration suites together), and dynamic trees
# (test_dyn_serve runs mixed read/write traffic at 1/2/8 replica workers
# and 1/2/4 pipeline workers against the single-threaded oracle — the
# control-plane touch() publishes each level's color row with a release
# store that worker-side color_of() reads must acquire, so a
# torn publication shows up as a TSan report and as a response or
# mutation-log divergence; test_dyn_incremental re-checks the
# incremental coloring bit-identical to a from-scratch rebuild after
# every mutation batch, and test_engine_faults drives insert/erase
# batches through fail-stop fault epochs at 2/8 workers — the `dyn`
# ctest label selects the dynamic-tree suites plus the E24 smoke gate),
# and real-memory arenas + adaptive selection (test_serve_mem touches
# the immutable MemoryBackend slabs from the pipeline's resolve workers
# at 1/2/8 workers while the oracle touches on the control plane — a
# race in the concurrent touch path or the per-token TouchStats fold
# shows up as a TSan report and as a totals/checksum divergence from
# the single-threaded recount; test_serve_adaptive runs the
# AdaptiveSelector's epoch switches at 1/2/8 replica and pipeline
# workers against the oracle, so a race between the control-plane
# selector and worker-side epoch-mapping reads surfaces as a report or
# a response divergence — the `mem` ctest label selects the arena,
# combinator, selector and serve-layer suites plus the E25 smoke gate).
#
#   tests/run_sanitizers.sh             # all three sanitizers, full suite
#   tests/run_sanitizers.sh tsan        # one sanitizer
#   tests/run_sanitizers.sh tsan Sim    # ctest -R filter (regex)
#
# Benchmarks are off in the sanitizer presets (google-benchmark under TSan
# is noise, not signal); examples and tests build and run.
#
# After the sanitizers, the `nosimd` preset builds and runs the suite with
# the SIMD batch kernels compiled out — the scalar fallbacks must stay
# bit-identical (the batch == scalar differential suites make any drift a
# test failure, not just a perf note). Skipped when a single sanitizer is
# requested explicitly; run it alone with `tests/run_sanitizers.sh nosimd`.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=(asan ubsan tsan nosimd)
if [[ $# -ge 1 && -n "$1" ]]; then
  sanitizers=("$1")
fi
filter=()
if [[ $# -ge 2 && -n "$2" ]]; then
  filter=(-R "$2")
fi

jobs="$(nproc 2>/dev/null || echo 4)"
failed=()

for name in "${sanitizers[@]}"; do
  echo "==== [$name] configure ===="
  cmake --preset "$name"
  echo "==== [$name] build ===="
  cmake --build --preset "$name" -j "$jobs"
  echo "==== [$name] ctest ===="
  if ! ctest --test-dir "build-$name" --output-on-failure -j "$jobs" "${filter[@]}"; then
    failed+=("$name")
  fi
done

if [[ ${#failed[@]} -ne 0 ]]; then
  echo "FAILED under: ${failed[*]}" >&2
  exit 1
fi
echo "All sanitizer runs clean: ${sanitizers[*]}"
