#include "pmtree/templates/sampler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(Sampler, SubtreeSamplesAreValidAndCoverAllRoots) {
  const CompleteBinaryTree tree(5);
  Rng rng(1);
  std::map<std::uint64_t, std::uint64_t> root_histogram;
  for (int i = 0; i < 4000; ++i) {
    const auto s = sample_subtree(tree, 7, rng);
    ASSERT_TRUE(s.has_value());
    ASSERT_TRUE(s->fits(tree));
    root_histogram[bfs_id(s->root)] += 1;
  }
  // 7 possible roots (levels 0..2), all should appear under uniformity.
  EXPECT_EQ(root_histogram.size(), 7u);
}

TEST(Sampler, SubtreeTooBigReturnsNullopt) {
  const CompleteBinaryTree tree(3);
  Rng rng(1);
  EXPECT_FALSE(sample_subtree(tree, 15, rng).has_value());
}

TEST(Sampler, LevelRunSamplesAreValid) {
  const CompleteBinaryTree tree(6);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto l = sample_level_run(tree, 5, rng);
    ASSERT_TRUE(l.has_value());
    ASSERT_TRUE(l->fits(tree));
  }
  EXPECT_FALSE(sample_level_run(tree, 64, rng).has_value());
}

TEST(Sampler, PathSamplesAreValidAndUniformOverDeepestNodes) {
  const CompleteBinaryTree tree(4);
  Rng rng(3);
  std::map<std::uint64_t, std::uint64_t> start_histogram;
  for (int i = 0; i < 4000; ++i) {
    const auto p = sample_path(tree, 3, rng);
    ASSERT_TRUE(p.has_value());
    ASSERT_TRUE(p->fits(tree));
    start_histogram[bfs_id(p->start)] += 1;
  }
  // Deepest nodes at levels 2..3: 4 + 8 = 12 possibilities.
  EXPECT_EQ(start_histogram.size(), 12u);
}

TEST(Sampler, CompositeMeetsSpecExactly) {
  const CompleteBinaryTree tree(12);
  Rng rng(4);
  CompositeSpec spec;
  for (const std::uint64_t c : {1u, 2u, 5u}) {
    for (const std::uint64_t D : {8u, 40u, 200u}) {
      if (D < c) continue;
      spec.total_size = D;
      spec.components = c;
      const auto inst = sample_composite(tree, spec, rng);
      ASSERT_TRUE(inst.has_value()) << "D=" << D << " c=" << c;
      EXPECT_EQ(inst->size(), D);
      EXPECT_EQ(inst->component_count(), c);
      EXPECT_TRUE(inst->fits(tree));
      EXPECT_TRUE(inst->is_disjoint());
    }
  }
}

TEST(Sampler, CompositeRespectsKindRestrictions) {
  const CompleteBinaryTree tree(12);
  Rng rng(5);
  CompositeSpec spec;
  spec.total_size = 60;
  spec.components = 3;
  spec.allow_subtrees = false;
  spec.allow_paths = false;
  const auto inst = sample_composite(tree, spec, rng);
  ASSERT_TRUE(inst.has_value());
  for (const auto& part : inst->parts()) {
    EXPECT_EQ(part.kind(), TemplateKind::kLevelRun);
  }
}

TEST(Sampler, CompositeImpossibleSpecsReturnNullopt) {
  const CompleteBinaryTree tree(6);
  Rng rng(6);
  CompositeSpec spec;
  spec.total_size = 3;
  spec.components = 5;  // c > D
  EXPECT_FALSE(sample_composite(tree, spec, rng).has_value());
  spec.total_size = 60;  // more than half the 63-node tree
  spec.components = 1;
  EXPECT_FALSE(sample_composite(tree, spec, rng).has_value());
}

TEST(Sampler, DeterministicUnderSeed) {
  const CompleteBinaryTree tree(8);
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    const auto x = sample_path(tree, 4, a);
    const auto y = sample_path(tree, 4, b);
    ASSERT_TRUE(x && y);
    EXPECT_EQ(x->start, y->start);
  }
}

}  // namespace
}  // namespace pmtree
