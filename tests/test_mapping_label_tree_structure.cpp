// Structural white-box tests of the LABEL-TREE reconstruction: the
// MICRO-LABEL hand example from Fig. 10's formulas, the ROTATE
// shift-by-one property Lemma 7's proof quotes verbatim, the MACRO window
// advance between generations, and the l_override ablation hook.
#include "pmtree/mapping/label_tree.hpp"

#include <gtest/gtest.h>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {
namespace {

TEST(LabelTreeStructure, MicroLabelHandExampleL1M3) {
  // m = 3, forced l = 1: sub-blocks are single nodes. By Fig. 10:
  //   level 0: sigma = 0 (list position of the root);
  //   level j >= 1, sub-block h: sigma = 2^1 + 2^{j-1} + floor(h/2) - 1.
  // Block-relative sigma layout: [0; 2, 2; 3, 3, 4, 4].
  // With M = 7 the root block (jb = 0, ib = 0) has window base 0, so the
  // colors of the first block equal the sigmas directly.
  const CompleteBinaryTree tree(6);
  const LabelTreeMapping map(tree, 7, LabelTreeMapping::Retrieval::kTable, 1);
  ASSERT_EQ(map.m(), 3u);
  ASSERT_EQ(map.l(), 1u);
  EXPECT_EQ(map.color_of(v(0, 0)), 0u);
  EXPECT_EQ(map.color_of(v(0, 1)), 2u);
  EXPECT_EQ(map.color_of(v(1, 1)), 2u);
  EXPECT_EQ(map.color_of(v(0, 2)), 3u);
  EXPECT_EQ(map.color_of(v(1, 2)), 3u);
  EXPECT_EQ(map.color_of(v(2, 2)), 4u);
  EXPECT_EQ(map.color_of(v(3, 2)), 4u);
}

TEST(LabelTreeStructure, ConsecutiveBlocksShiftByOne) {
  // Lemma 7's proof: "list(B) = {f_0..f_{l-1}} and list(B') = {f_1..f_l}".
  // Equivalent check on colors: the color of a relative position in block
  // ib+1 is the color of the same position in block ib, plus one (mod M).
  const std::uint32_t M = 31;
  const CompleteBinaryTree tree(12);
  const LabelTreeMapping map(tree, M);
  const std::uint32_t m = map.m();
  for (std::uint32_t jb = 1; (jb + 1) * m <= tree.levels(); ++jb) {
    for (std::uint32_t r = 0; r < m; ++r) {
      const std::uint32_t level = jb * m + r;
      for (std::uint64_t irel = 0; irel < pow2(r); ++irel) {
        for (std::uint64_t ib = 0; ib + 1 < pow2(jb * m) && ib < 8; ++ib) {
          const Color a = map.color_of(Node{level, (ib << r) + irel});
          const Color b = map.color_of(Node{level, ((ib + 1) << r) + irel});
          ASSERT_EQ((a + 1) % M, b)
              << "jb=" << jb << " r=" << r << " irel=" << irel << " ib=" << ib;
        }
      }
    }
  }
}

TEST(LabelTreeStructure, GenerationsAdvanceByEll) {
  // MACRO-LABEL: block (0, jb+1)'s window starts ell past block (0, jb)'s.
  const std::uint32_t M = 63;
  const CompleteBinaryTree tree(18);
  const LabelTreeMapping map(tree, M);
  const std::uint32_t m = map.m();
  // Compare the block roots of the leftmost blocks of two generations:
  // both have relative position 0 (sigma 0), so colors differ by ell.
  const Color g0 = map.color_of(v(0, 0));
  const Color g1 = map.color_of(v(0, m));
  const Color g2 = map.color_of(v(0, 2 * m));
  EXPECT_EQ((g0 + map.ell()) % M, g1);
  EXPECT_EQ((g1 + map.ell()) % M, g2);
}

TEST(LabelTreeStructure, OverrideChangesParametersButStaysLegal) {
  const CompleteBinaryTree tree(12);
  const std::uint32_t M = 63;
  for (std::uint32_t l = 1; l <= 5; ++l) {
    const LabelTreeMapping map(tree, M, LabelTreeMapping::Retrieval::kTable, l);
    EXPECT_EQ(map.l(), l);
    for (std::uint64_t id = 0; id < tree.size(); id += 7) {
      ASSERT_LT(map.color_of(node_at(id)), M);
    }
  }
}

TEST(LabelTreeStructure, OverrideClampedToValidRange) {
  const CompleteBinaryTree tree(10);
  const LabelTreeMapping map(tree, 63, LabelTreeMapping::Retrieval::kTable, 99);
  EXPECT_EQ(map.l(), map.m() - 1);  // clamped
}

TEST(LabelTreeStructure, SigmaWithinFirstBlockNeverExceedsEll) {
  const CompleteBinaryTree tree(12);
  const LabelTreeMapping map(tree, 127);
  const std::uint32_t m = map.m();
  // Colors of the root block (base 0) are the sigma values themselves.
  for (std::uint32_t j = 0; j < std::min(m, tree.levels()); ++j) {
    for (std::uint64_t i = 0; i < pow2(j); ++i) {
      ASSERT_LT(map.color_of(v(i, j)), map.ell());
    }
  }
}

}  // namespace
}  // namespace pmtree
