// Determinism property tests for the multi-tenant forest (DESIGN.md §13):
// across randomized multi-tenant configurations — 2..16 tenants with mixed
// tree heights, template families (point / path / level-run / composite
// payloads), Zipf-skewed and uniform arrivals, per-tenant quotas and
// optional per-tenant fault plans — the multi-threaded forest must be
// bit-identical, request-for-request, to the single-threaded oracle at
// 1/2/8 workers, with and without a sharded replica pool. The suites
// below drive 60+ seeded configurations through that contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree::serve {
namespace {

/// Zipf-like skewed draw from [0, n): geometric bucket selection halves
/// toward the hot end, so index i is hit with probability roughly
/// proportional to a power-law tail — hot keys without floating point
/// (bit-identical generation on every platform).
std::uint64_t zipf_below(Rng& rng, std::uint64_t n) {
  std::uint64_t lo = 0;
  std::uint64_t hi = n;
  while (hi - lo > 1 && rng.chance(1, 2)) {
    hi = lo + (hi - lo + 1) / 2;
  }
  return lo + rng.below(hi - lo);
}

struct TenantConfig {
  std::unique_ptr<CompleteBinaryTree> tree;
  std::unique_ptr<TreeMapping> mapping;
  TenantOptions options;
  std::vector<Request> requests;
  // Owned here; run_with_workers wires it into the copied options so the
  // pointer survives moves (options.engine.faults must never dangle).
  std::unique_ptr<fault::FaultPlan> faults;
};

struct ForestConfig {
  ForestOptions options;
  std::vector<TenantConfig> tenants;

  [[nodiscard]] std::size_t total_requests() const {
    std::size_t n = 0;
    for (const TenantConfig& t : tenants) n += t.requests.size();
    return n;
  }
};

/// One request payload, drawn from the template families the serve layer
/// batches: a point lookup, a root-to-leaf path (P), a contiguous
/// level-run (L(K)), or a path+run composite (C) — indices Zipf-skewed
/// or uniform per the tenant's access pattern.
std::vector<Node> random_payload(Rng& rng, std::uint32_t levels, bool zipf) {
  const auto draw = [&](std::uint64_t n) {
    return zipf ? zipf_below(rng, n) : rng.below(n);
  };
  std::vector<Node> nodes;
  const std::uint64_t family = rng.below(4);
  if (family == 0) {  // point lookup (occasionally an empty probe)
    if (!rng.chance(1, 8)) {
      const std::uint32_t level = static_cast<std::uint32_t>(rng.below(levels));
      nodes.push_back(v(draw(pow2(level)), level));
    }
  } else if (family == 1) {  // root-to-leaf path
    const std::uint64_t leaf = draw(pow2(levels - 1));
    for (std::uint32_t l = 0; l < levels; ++l) {
      nodes.push_back(v(leaf >> (levels - 1 - l), l));
    }
  } else if (family == 2) {  // contiguous same-level run
    const std::uint32_t level =
        static_cast<std::uint32_t>(rng.between(1, levels - 1));
    const std::uint64_t len =
        rng.between(1, std::min<std::uint64_t>(pow2(level), 6));
    const std::uint64_t start = draw(pow2(level) - len + 1);
    for (std::uint64_t k = 0; k < len; ++k) {
      nodes.push_back(v(start + k, level));
    }
  } else {  // composite: short path + sibling run
    const std::uint64_t leaf = draw(pow2(levels - 1));
    for (std::uint32_t l = levels / 2; l < levels; ++l) {
      nodes.push_back(v(leaf >> (levels - 1 - l), l));
    }
    const std::uint32_t level = levels - 1;
    const std::uint64_t start =
        std::min<std::uint64_t>(leaf, pow2(level) - 3);
    for (std::uint64_t k = 0; k < 3; ++k) {
      nodes.push_back(v(start + k, level));
    }
  }
  return nodes;
}

ForestConfig random_forest(std::uint64_t seed) {
  Rng rng(seed);
  ForestConfig cfg;
  cfg.options.tick_cycles = rng.between(1, 6);
  cfg.options.replicas = static_cast<std::uint32_t>(rng.between(1, 6));
  cfg.options.drr_quantum_nodes = rng.between(8, 48);

  const std::size_t tenant_count = rng.between(2, 16);
  cfg.options.global_queue_bound =
      rng.chance(1, 2) ? rng.between(tenant_count, 48) : 0;

  for (std::size_t i = 0; i < tenant_count; ++i) {
    TenantConfig t;
    const std::uint32_t levels = static_cast<std::uint32_t>(rng.between(4, 9));
    t.tree = std::make_unique<CompleteBinaryTree>(levels);
    const std::uint32_t modules =
        static_cast<std::uint32_t>(rng.between(3, 17));
    if (rng.chance(1, 2)) {
      t.mapping = std::make_unique<ColorMapping>(
          make_optimal_color_mapping(*t.tree, modules));
    } else {
      t.mapping = std::make_unique<ModuloMapping>(*t.tree, modules);
    }
    t.options.rate = static_cast<double>(rng.between(1, 8));
    t.options.weight = rng.between(1, 5);
    t.options.admission.queue_bound = rng.between(1, 24);
    t.options.admission.overflow =
        rng.chance(1, 2) ? OverflowPolicy::kShed : OverflowPolicy::kBlock;
    t.options.batch.max_batch_nodes = rng.between(2, 40);
    t.options.batch.max_wait_cycles = rng.between(0, 10);
    t.options.engine.sampling = engine::EngineOptions::DepthSampling::kStrided;
    t.options.engine.sample_stride = 16;

    // Arrival process: Zipf-skewed hot keys arriving in bursts, or
    // uniform keys on a spread-out clock — mixed across tenants.
    const bool zipf = rng.chance(1, 2);
    const std::size_t count = rng.between(8, 36);
    const std::uint32_t clients =
        static_cast<std::uint32_t>(rng.between(1, 3));
    std::uint64_t clock = rng.below(16);
    std::vector<std::uint64_t> next_seq(clients, 0);
    for (std::size_t k = 0; k < count; ++k) {
      clock += zipf ? (rng.chance(2, 3) ? 0 : rng.between(1, 9))
                    : rng.below(4);
      Request r;
      r.client = static_cast<std::uint32_t>(rng.below(clients));
      r.seq = next_seq[r.client]++;
      r.submit_cycle = clock;
      r.deadline_cycles = rng.chance(1, 4) ? rng.between(2, 24) : 0;
      r.nodes = random_payload(rng, levels, zipf);
      t.requests.push_back(std::move(r));
    }
    cfg.tenants.push_back(std::move(t));
  }
  return cfg;
}

/// Attaches a seeded fault plan + tight retry policy to roughly half the
/// tenants (always tenant 0), so degraded and healthy tenants coexist.
ForestConfig faulted_forest(std::uint64_t seed) {
  ForestConfig cfg = random_forest(seed);
  Rng rng(seed ^ 0xF0BE57u);
  for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
    if (i != 0 && !rng.chance(1, 2)) continue;
    TenantConfig& t = cfg.tenants[i];
    fault::FaultPlan::RandomOptions fopts;
    fopts.seed = rng();
    fopts.modules = t.mapping->num_modules();
    fopts.fail_fraction = 0.25;
    fopts.fail_window = 64;
    fopts.slowdown_count = 2;
    fopts.slowdown_window = 256;
    fopts.slowdown_max_length = 128;
    fopts.slowdown_max_period = 4;
    t.faults = std::make_unique<fault::FaultPlan>(fault::FaultPlan::random(fopts));
    t.options.retry.max_retries = static_cast<std::uint32_t>(rng.between(1, 3));
    t.options.retry.attempt_timeout_cycles = rng.between(2, 12);
    t.options.retry.backoff_base_cycles = rng.between(1, 8);
    t.options.retry.backoff_cap_cycles = 64;
  }
  return cfg;
}

ForestReport run_with_workers(const ForestConfig& cfg, unsigned workers) {
  ForestOptions opts = cfg.options;
  opts.workers = workers;
  Forest forest(opts);
  for (const TenantConfig& t : cfg.tenants) {
    TenantOptions topts = t.options;
    if (t.faults != nullptr) topts.engine.faults = t.faults.get();
    forest.add_tenant(*t.mapping, std::move(topts));
  }
  for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
    for (const Request& r : cfg.tenants[i].requests) {
      forest.submit(static_cast<std::uint32_t>(i), r);
    }
  }
  return forest.run();
}

void expect_same_tenant(const TenantReport& got, const TenantReport& want) {
  ASSERT_EQ(got.responses.size(), want.responses.size());
  for (std::size_t i = 0; i < got.responses.size(); ++i) {
    const Response& a = got.responses[i];
    const Response& b = want.responses[i];
    ASSERT_EQ(a.client, b.client) << i;
    ASSERT_EQ(a.seq, b.seq) << i;
    ASSERT_EQ(a.status, b.status) << i;
    ASSERT_EQ(a.submit_cycle, b.submit_cycle) << i;
    ASSERT_EQ(a.admitted_cycle, b.admitted_cycle) << i;
    ASSERT_EQ(a.dispatch_cycle, b.dispatch_cycle) << i;
    ASSERT_EQ(a.completion_cycle, b.completion_cycle) << i;
    ASSERT_EQ(a.batch, b.batch) << i;
    ASSERT_EQ(a.retries, b.retries) << i;
  }
  ASSERT_EQ(got.batches.size(), want.batches.size());
  for (std::size_t b = 0; b < got.batches.size(); ++b) {
    ASSERT_EQ(got.batches[b].members, want.batches[b].members) << b;
    ASSERT_EQ(got.batches[b].nodes, want.batches[b].nodes) << b;
    ASSERT_EQ(got.batches[b].formed_cycle, want.batches[b].formed_cycle) << b;
  }
  ASSERT_EQ(got.served_nodes, want.served_nodes);
}

void expect_same_report(const ForestReport& got, const ForestReport& want) {
  ASSERT_EQ(got.tenants.size(), want.tenants.size());
  for (std::size_t i = 0; i < got.tenants.size(); ++i) {
    SCOPED_TRACE("tenant=" + std::to_string(i));
    expect_same_tenant(got.tenants[i], want.tenants[i]);
  }
  ASSERT_EQ(got.ticks, want.ticks);
  ASSERT_EQ(got.rounds, want.rounds);
  ASSERT_EQ(got.final_cycle, want.final_cycle);
  // The whole report — rollup metrics, per-lane trajectories, response
  // tables — serializes identically.
  ASSERT_EQ(got.to_json().dump(), want.to_json().dump());
}

void expect_all_terminal(const ForestReport& report, const ForestConfig& cfg) {
  ASSERT_EQ(report.total_requests(), cfg.total_requests());
  ASSERT_EQ(report.count(RequestStatus::kOk) +
                report.count(RequestStatus::kShed) +
                report.count(RequestStatus::kExpired),
            cfg.total_requests());
}

TEST(ServeForest, WorkerCountNeverChangesResults) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ForestConfig cfg = random_forest(seed * 7919);
    const ForestReport oracle = run_with_workers(cfg, 1);
    expect_all_terminal(oracle, cfg);
    for (const unsigned workers : {2u, 8u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      expect_same_report(run_with_workers(cfg, workers), oracle);
    }
  }
}

TEST(ServeForest, FaultedTenantsAreWorkerCountInvariant) {
  // Degraded multi-tenant mode is held to the same bar: per-tenant fault
  // plans + retry policies must still be bit-identical at 1/2/8 workers.
  std::uint64_t total_retries = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ForestConfig cfg = faulted_forest(seed * 15485863);
    const ForestReport oracle = run_with_workers(cfg, 1);
    expect_all_terminal(oracle, cfg);
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
      for (const Response& r : oracle.tenants[i].responses) {
        ASSERT_LE(r.retries, cfg.tenants[i].options.retry.max_retries);
        total_retries += r.retries;
      }
    }
    for (const unsigned workers : {2u, 8u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      expect_same_report(run_with_workers(cfg, workers), oracle);
    }
  }
  // The policies are tight enough that retries actually fired somewhere.
  EXPECT_GT(total_retries, 0u);
}

TEST(ServeForest, ReplicaShardingIsWorkerCountInvariant) {
  // The worker-count contract holds with and without a sharded replica
  // pool: the same tenant set served by 1 lane per tenant and by a wide
  // apportioned pool each stay bit-identical across worker counts.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    for (const std::uint32_t replicas : {1u, 24u}) {
      SCOPED_TRACE("replicas=" + std::to_string(replicas));
      ForestConfig cfg = random_forest(seed * 104729);
      cfg.options.replicas = replicas;
      const ForestReport oracle = run_with_workers(cfg, 1);
      expect_all_terminal(oracle, cfg);
      for (const unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expect_same_report(run_with_workers(cfg, workers), oracle);
      }
    }
  }
}

TEST(ServeForest, ConcurrentSubmissionMatchesSequential) {
  for (const std::uint64_t seed : {3u, 11u, 17u, 23u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ForestConfig cfg = random_forest(seed * 2654435761u);
    const ForestReport sequential = run_with_workers(cfg, 1);

    ForestOptions opts = cfg.options;
    opts.workers = 8;
    Forest forest(opts);
    for (const TenantConfig& t : cfg.tenants) {
      forest.add_tenant(*t.mapping, t.options);
    }
    // One submitter thread per stripe of tenants, interleaving
    // arbitrarily; the canonical (submit, tenant, client, seq) order
    // makes the outcome a function of the submitted set alone.
    std::vector<std::thread> submitters;
    for (unsigned s = 0; s < 4; ++s) {
      submitters.emplace_back([&, s] {
        for (std::size_t i = s; i < cfg.tenants.size(); i += 4) {
          for (const Request& r : cfg.tenants[i].requests) {
            forest.submit(static_cast<std::uint32_t>(i), r);
          }
        }
      });
    }
    for (auto& th : submitters) th.join();
    expect_same_report(forest.run(), sequential);
  }
}

TEST(ServeForest, PerTenantFaultPlansDegradeOnlyThatTenant) {
  // The isolation headline: killing modules under ONE tenant's mapping
  // must leave every other tenant's responses and batches bit-identical
  // to the fully healthy run — fault blast radius is a single tenant.
  std::uint64_t tenant0_diffs = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ForestConfig cfg = random_forest(seed * 6700417);
    const ForestReport healthy = run_with_workers(cfg, 2);

    // Aggressive plan on tenant 0 only: most modules dead from cycle 0.
    fault::FaultPlan::RandomOptions fopts;
    fopts.seed = seed;
    fopts.modules = cfg.tenants[0].mapping->num_modules();
    fopts.fail_fraction = 0.75;
    fopts.fail_window = 8;
    fopts.slowdown_count = 3;
    fopts.slowdown_window = 64;
    fopts.slowdown_max_length = 64;
    fopts.slowdown_max_period = 4;
    cfg.tenants[0].faults =
        std::make_unique<fault::FaultPlan>(fault::FaultPlan::random(fopts));
    const ForestReport degraded = run_with_workers(cfg, 2);

    ASSERT_EQ(degraded.tenants.size(), healthy.tenants.size());
    for (std::size_t i = 1; i < healthy.tenants.size(); ++i) {
      SCOPED_TRACE("tenant=" + std::to_string(i));
      expect_same_tenant(degraded.tenants[i], healthy.tenants[i]);
    }
    // Track that the plan actually bit tenant 0 somewhere across seeds —
    // otherwise the isolation check would be vacuous.
    const auto& a = degraded.tenants[0].responses;
    const auto& b = healthy.tenants[0].responses;
    for (std::size_t k = 0; k < a.size(); ++k) {
      tenant0_diffs += a[k].completion_cycle != b[k].completion_cycle ? 1 : 0;
    }
  }
  EXPECT_GT(tenant0_diffs, 0u);
}

TEST(ServeForest, EmptyFaultPlansMatchNoPlansExactly) {
  for (const std::uint64_t seed : {5u, 9u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ForestConfig cfg = random_forest(seed * 999983);
    const ForestReport bare = run_with_workers(cfg, 2);
    for (TenantConfig& t : cfg.tenants) {
      t.faults = std::make_unique<fault::FaultPlan>();  // empty plan
    }
    expect_same_report(run_with_workers(cfg, 2), bare);
  }
}

TEST(ServeForest, RepeatedRunsConsumeOnlyNewSubmissions) {
  // run() drains what was submitted since the previous run; a second
  // batch of submissions against the same forest serves independently
  // and deterministically.
  const ForestConfig cfg = random_forest(31 * 7919);
  Forest forest(cfg.options);
  for (const TenantConfig& t : cfg.tenants) {
    forest.add_tenant(*t.mapping, t.options);
  }
  for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
    for (const Request& r : cfg.tenants[i].requests) {
      forest.submit(static_cast<std::uint32_t>(i), r);
    }
  }
  const ForestReport first = forest.run();
  ASSERT_EQ(first.total_requests(), cfg.total_requests());

  Request extra;
  extra.client = 90;
  extra.seq = 0;
  extra.submit_cycle = 3;
  extra.nodes.push_back(v(0, 0));
  forest.submit(0, extra);
  const ForestReport second = forest.run();
  ASSERT_EQ(second.total_requests(), 1u);
  ASSERT_EQ(second.tenants[0].responses.size(), 1u);
  EXPECT_EQ(second.tenants[0].responses[0].status, RequestStatus::kOk);
}

}  // namespace
}  // namespace pmtree::serve
