#include "pmtree/tree/block.hpp"

#include <gtest/gtest.h>

namespace pmtree {
namespace {

TEST(BlockScheme, Geometry) {
  const BlockScheme scheme{3};  // K = 7, blocks of 4 nodes
  EXPECT_EQ(scheme.block_size(), 4u);
  EXPECT_EQ(scheme.blocks_at_level(3), 2u);
  EXPECT_EQ(scheme.blocks_at_level(5), 8u);
}

TEST(BlockScheme, MembershipAndPosition) {
  const BlockScheme scheme{3};
  EXPECT_EQ(scheme.block_of(v(0, 4)), 0u);
  EXPECT_EQ(scheme.block_of(v(3, 4)), 0u);
  EXPECT_EQ(scheme.block_of(v(4, 4)), 1u);
  EXPECT_EQ(scheme.position_in_block(v(6, 4)), 2u);
  EXPECT_TRUE(scheme.is_block_last(v(7, 4)));
  EXPECT_FALSE(scheme.is_block_last(v(6, 4)));
}

TEST(BlockScheme, BlockNodesAreLeavesOfBlockRootSubtree) {
  // The paper: block(h, j) consists of the leaves of S_K(h, j-k+1).
  const BlockScheme scheme{3};
  for (std::uint32_t j = 3; j < 7; ++j) {
    for (std::uint64_t h = 0; h < scheme.blocks_at_level(j); ++h) {
      const Node root = scheme.block_root(h, j);
      EXPECT_EQ(root, v(h, j - 2));
      for (std::uint64_t t = 0; t < scheme.block_size(); ++t) {
        const Node n = scheme.block_node(h, j, t);
        EXPECT_TRUE(in_subtree(n, root, 3));
        EXPECT_EQ(ancestor(n, 2), root);  // (k-1)-st ancestor
        EXPECT_EQ(scheme.block_of(n), h);
        EXPECT_EQ(scheme.position_in_block(n), t);
      }
    }
  }
}

TEST(BfsPositionInSubtree, RootIsZeroAndOrderIsLevelwise) {
  const Node root = v(3, 2);
  EXPECT_EQ(bfs_position_in_subtree(root, root), 0u);
  EXPECT_EQ(bfs_position_in_subtree(v(6, 3), root), 1u);
  EXPECT_EQ(bfs_position_in_subtree(v(7, 3), root), 2u);
  EXPECT_EQ(bfs_position_in_subtree(v(12, 4), root), 3u);
  EXPECT_EQ(bfs_position_in_subtree(v(15, 4), root), 6u);
}

TEST(BfsPositionInSubtree, RoundTripsWithSubtreeNodeAt) {
  const Node root = v(5, 3);
  for (std::uint64_t pos = 0; pos < 31; ++pos) {
    const Node n = subtree_node_at(root, pos);
    EXPECT_EQ(bfs_position_in_subtree(n, root), pos);
    EXPECT_TRUE(in_subtree(n, root, 5));
  }
}

}  // namespace
}  // namespace pmtree
