// Templates tour — a runnable version of the paper's Fig. 1.
//
// Prints a small complete tree with one instance of each template kind
// highlighted, then the instance families' sizes, then how COLOR colors
// the tree (so the conflict-freeness can be eyeballed).
//
//   $ ./templates_tour
#include <cstdint>
#include <iostream>
#include <set>
#include <string>

#include "pmtree/mapping/color.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/templates/instance.hpp"
#include "pmtree/util/bits.hpp"

namespace {

using namespace pmtree;

/// Renders the tree level by level; members of `mark` are bracketed.
void draw(const CompleteBinaryTree& tree, const std::set<std::uint64_t>& mark,
          const ColorMapping* mapping = nullptr) {
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    const std::uint64_t width = tree.level_width(j);
    const std::uint64_t cell = pow2(tree.levels() - 1 - j) * 4;
    std::cout << "L" << j << " ";
    for (std::uint64_t i = 0; i < width; ++i) {
      const Node n = v(i, j);
      std::string label = mapping ? std::to_string(mapping->color_of(n))
                                  : std::to_string(bfs_id(n));
      if (mark.count(bfs_id(n)) != 0) label = "[" + label + "]";
      const std::uint64_t pad = cell > label.size() ? cell - label.size() : 1;
      std::cout << std::string(pad / 2, ' ') << label
                << std::string(pad - pad / 2, ' ');
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

std::set<std::uint64_t> ids_of(const std::vector<Node>& nodes) {
  std::set<std::uint64_t> ids;
  for (const Node& n : nodes) ids.insert(bfs_id(n));
  return ids;
}

}  // namespace

int main() {
  const CompleteBinaryTree tree(5);
  std::cout << "A complete binary tree of " << tree.levels() << " levels ("
            << tree.size() << " nodes), node labels are BFS ids:\n\n";
  draw(tree, {});

  std::cout << "S-template instance S_7(1, 1) — a complete subtree:\n\n";
  draw(tree, ids_of(SubtreeInstance{v(1, 1), 7}.nodes()));

  std::cout << "P-template instance P_4(11, 4) — an ascending path:\n\n";
  draw(tree, ids_of(PathInstance{v(11, 4), 4}.nodes()));

  std::cout << "L-template instance L_5(3, 4) — consecutive level nodes:\n\n";
  draw(tree, ids_of(LevelRunInstance{v(3, 4), 5}.nodes()));

  std::cout << "C-template — a composite of disjoint instances:\n\n";
  CompositeInstance composite;
  composite.add(SubtreeInstance{v(0, 2), 3});
  composite.add(PathInstance{v(3, 2), 3});
  composite.add(LevelRunInstance{v(8, 4), 4});
  draw(tree, ids_of(composite.nodes()));

  std::cout << "family sizes on this tree:\n"
            << "  |S(7)| = " << count_subtrees(tree, 7) << "\n"
            << "  |P(4)| = " << count_paths(tree, 4) << "\n"
            << "  |L(5)| = " << count_level_runs(tree, 5) << "\n\n";

  const ColorMapping mapping(tree, 5, 2);
  std::cout << "the same tree colored by " << mapping.name() << " on "
            << mapping.num_modules() << " modules (labels are module "
            << "numbers;\nevery S_3 subtree and every 5-node ascending path "
            << "is rainbow):\n\n";
  draw(tree, {}, &mapping);
  return 0;
}
