// Dictionary demo (Section 1.1: "heaps and dictionaries are among the two
// most popular data structures implemented with trees").
//
// A static ordered dictionary on a complete BST. Lookups speculatively
// fetch the whole root-to-leaf path in one parallel access; under COLOR
// (conflict-free on paths of the tree height) every lookup is exactly one
// memory round, while naive layouts serialize on hot modules.
//
//   $ ./dictionary_demo [levels] [lookups]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <set>

#include "pmtree/apps/dictionary.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/pms/memory_system.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;

  const std::uint32_t levels =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 14;
  const std::size_t lookups =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 20000;

  // Distinct sorted keys, exactly filling the complete tree.
  Rng keygen(3);
  std::set<Dictionary::Key> key_set;
  while (key_set.size() < tree_size(levels)) {
    key_set.insert(static_cast<Dictionary::Key>(keygen.below(1u << 28)));
  }
  const std::vector<Dictionary::Key> keys(key_set.begin(), key_set.end());
  const Dictionary dict(keys);
  std::cout << "dictionary: " << dict.size() << " keys on a " << levels
            << "-level complete BST\n\n";

  const ColorMapping color(dict.tree(), levels, 3);
  const LabelTreeMapping label(dict.tree(), color.num_modules());
  const ModuloMapping naive(dict.tree(), color.num_modules());

  TableWriter table({"mapping", "modules", "lookups", "hits", "rounds/lookup",
                     "worst lookup"});
  for (const TreeMapping* map :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&naive)}) {
    MemorySystem pms(*map);
    Rng rng(42);
    std::uint64_t hits = 0;
    for (std::size_t q = 0; q < lookups; ++q) {
      // Half the probes are present keys, half uniform misses.
      const auto probe =
          rng.chance(1, 2)
              ? keys[rng.below(keys.size())]
              : static_cast<Dictionary::Key>(rng.below(1u << 28));
      const auto result = dict.search(probe);
      hits += result.found ? 1 : 0;
      pms.access(result.accessed);
    }
    table.row(map->name(), map->num_modules(), lookups, hits,
              pms.round_stats().mean(), pms.round_stats().max());
  }
  table.print(std::cout);
  std::cout << "\nevery lookup fetches one full root-to-leaf path; COLOR "
               "makes it a single round.\n";
  return 0;
}
