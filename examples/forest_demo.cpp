// Multi-tenant forest demo: several tenants, one shared replica pool.
//
// Three tenants share a pool of four engine replicas: a premium
// dictionary tenant (DRR weight 4), a best-effort dictionary tenant
// (weight 1, small admission quota), and a range-index tenant (weight 2)
// — each with its own tree, mapping, and SLO knobs. The demo fires a
// skewed lookup mix plus a burst that overruns the best-effort quota,
// then prints the per-tenant SLO view: the burst sheds only at the
// tenant that caused it, the premium tenant keeps its latency, and the
// forest rollup shows lanes, reserved shares, and batch shares.
//
//   $ ./forest_demo [levels] [lookups]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "pmtree/apps/dictionary.hpp"
#include "pmtree/apps/range_index.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/clients.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;
  using namespace pmtree::serve;

  const std::uint32_t levels =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10;
  const std::size_t lookups =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2000;

  std::vector<Dictionary::Key> keys(tree_size(levels));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<Dictionary::Key>(3 * i);
  }
  const Dictionary dict(keys);
  const RangeIndex index(keys);
  // Each tenant brings its own tree and mapping: the dictionary keys every
  // node of an L-level tree, the range index pads its keys into the leaves
  // of an (L+1)-level one, so the two tenants' mappings differ in shape.
  const ColorMapping color = make_optimal_color_mapping(dict.tree(), 15);
  const ColorMapping range_color =
      make_optimal_color_mapping(index.tree(), 15);

  std::cout << "three tenants over a shared pool of 4 replica lanes, "
            << lookups << " operations each, " << levels << "-level trees\n";

  ForestOptions fopts;
  fopts.tick_cycles = 4;
  fopts.replicas = 4;
  fopts.global_queue_bound = 96;
  Forest forest(fopts);

  TenantOptions premium;
  premium.name = "premium";
  premium.weight = 4;
  premium.rate = 4.0;
  premium.admission.queue_bound = 64;
  premium.batch.max_batch_nodes = 64;
  premium.batch.max_wait_cycles = 8;
  const std::uint32_t kPremium = forest.add_tenant(color, premium);

  TenantOptions effort;
  effort.name = "best-effort";
  effort.weight = 1;
  effort.rate = 1.0;
  effort.admission.queue_bound = 8;  // the quota the burst will overrun
  effort.admission.overflow = OverflowPolicy::kShed;
  effort.batch.max_batch_nodes = 64;
  effort.batch.max_wait_cycles = 8;
  const std::uint32_t kEffort = forest.add_tenant(color, effort);

  TenantOptions ranges;
  ranges.name = "ranges";
  ranges.weight = 2;
  ranges.rate = 2.0;
  ranges.admission.queue_bound = 64;
  ranges.batch.max_batch_nodes = 96;
  ranges.batch.max_wait_cycles = 8;
  const std::uint32_t kRanges = forest.add_tenant(range_color, ranges);

  // Premium: a steady skewed lookup stream. Best-effort: the same stream
  // compressed into a cycle-0 burst. Ranges: random medium-width queries.
  DictionaryClient premium_client(dict, 0);
  DictionaryClient effort_client(dict, 1);
  RangeIndexClient range_client(index, 2);
  Rng rng(7);
  for (std::size_t i = 0; i < lookups; ++i) {
    const Dictionary::Key key =
        rng.chance(1, 4)
            ? keys[keys.size() / 2]
            : static_cast<Dictionary::Key>(rng.below(3 * keys.size()));
    premium_client.submit_search(forest, kPremium, key, /*submit_cycle=*/i);
    effort_client.submit_search(forest, kEffort, key, /*submit_cycle=*/0);
    if (i % 4 == 0) {
      const auto lo = static_cast<RangeIndex::Key>(rng.below(keys.size()));
      range_client.submit_query(forest, kRanges, 3 * lo, 3 * lo + 24,
                                /*submit_cycle=*/i);
    }
  }
  const ForestReport report = forest.run();

  TableWriter table({"tenant", "weight", "lanes", "ok", "shed", "p50", "p99",
                     "batch share"});
  const Json* rows = report.metrics.find("tenants");
  for (std::uint32_t i = 0; i < report.tenants.size(); ++i) {
    const TenantReport& t = report.tenants[i];
    const Json& row = rows->items()[i];
    const Json* latency = t.metrics.find("latency");
    table.row(t.name, row.find("weight")->as_uint(),
              row.find("lanes")->as_uint(), t.count(RequestStatus::kOk),
              t.count(RequestStatus::kShed),
              latency->find("p50")->as_uint(), latency->find("p99")->as_uint(),
              row.find("batch_share")->as_number());
  }
  std::cout << "\nper-tenant SLO view (the burst sheds only best-effort):\n";
  table.print(std::cout);

  // The clients re-derive their answers from the tenant sections.
  const auto premium_hits = premium_client.join(report.tenants[kPremium]);
  const auto range_hits = range_client.join(report.tenants[kRanges]);
  std::size_t found = 0;
  for (const auto& outcome : premium_hits) {
    if (outcome.response.status == RequestStatus::kOk &&
        outcome.result.found) {
      found += 1;
    }
  }
  std::cout << "\npremium lookups found " << found << "/" << premium_hits.size()
            << " keys; first range query returned "
            << (range_hits.empty() ? 0 : range_hits.front().result.keys.size())
            << " keys\nforest: " << report.total_requests() << " requests, "
            << report.ticks << " ticks, final cycle " << report.final_cycle
            << "\n";
  return 0;
}
