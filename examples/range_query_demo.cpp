// Range-query demo (the paper's Section 1.1 B-tree application).
//
// Builds a RangeIndex over sorted keys, runs range queries, shows how each
// query decomposes into the composite template (subtree cover + boundary
// search paths) and how many memory rounds it costs under COLOR vs. a
// naive mapping.
//
//   $ ./range_query_demo [keys] [queries]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/apps/range_index.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;

  const std::size_t num_keys =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4096;
  const std::size_t num_queries =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1000;

  Rng rng(99);
  std::vector<RangeIndex::Key> keys;
  keys.reserve(num_keys);
  RangeIndex::Key next = 0;
  for (std::size_t i = 0; i < num_keys; ++i) {
    next += static_cast<RangeIndex::Key>(1 + rng.below(9));
    keys.push_back(next);
  }
  const RangeIndex index(keys);
  std::cout << "index: " << index.key_count() << " keys on a "
            << index.tree().levels() << "-level complete tree\n\n";

  const std::uint32_t M = 15;
  const auto color = make_optimal_color_mapping(index.tree(), M);
  const ModuloMapping naive(index.tree(), M);

  // Show the decomposition of one example query in detail.
  const auto sample = index.query(next / 4, next / 2);
  std::cout << "example query [" << next / 4 << ", " << next / 2 << "]: "
            << sample.keys.size() << " keys, accessing "
            << sample.accessed.size() << " nodes as "
            << sample.decomposition.component_count()
            << " disjoint components:\n";
  for (const auto& part : sample.decomposition.parts()) {
    std::cout << "  " << to_string(part.kind()) << "-template of "
              << part.size() << " node(s)\n";
  }
  std::cout << "rounds under " << color.name() << ": "
            << conflicts(color, sample.accessed) + 1 << ", under "
            << naive.name() << ": " << conflicts(naive, sample.accessed) + 1
            << "\n\n";

  // Aggregate over a random query mix.
  TableWriter table({"mapping", "queries", "total rounds", "rounds/query",
                     "worst query"});
  for (const TreeMapping* mapping :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&naive)}) {
    Rng qrng(7);
    std::uint64_t total = 0, worst = 0, served = 0;
    for (std::size_t q = 0; q < num_queries; ++q) {
      const auto lo = static_cast<RangeIndex::Key>(qrng.below(static_cast<std::uint64_t>(next)));
      const auto hi = lo + static_cast<RangeIndex::Key>(qrng.below(static_cast<std::uint64_t>(next) / 8));
      const auto result = index.query(lo, hi);
      if (result.accessed.empty()) continue;
      const std::uint64_t r = conflicts(*mapping, result.accessed) + 1;
      total += r;
      worst = std::max(worst, r);
      ++served;
    }
    table.row(mapping->name(), served, total,
              static_cast<double>(total) / static_cast<double>(served), worst);
  }
  table.print(std::cout);
  return 0;
}
