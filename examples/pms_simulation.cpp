// Parallel memory system simulation: replays a large mixed workload
// against several mappings with the multithreaded simulator and reports
// simulated memory rounds (the paper's cost model) alongside wall time
// (which also reflects each mapping's addressing cost).
//
//   $ ./pms_simulation [levels] [accesses] [threads]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/pms/simulator.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;

  const std::uint32_t levels =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 20;
  const std::size_t accesses =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 50000;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;

  const CompleteBinaryTree tree(levels);
  const std::uint32_t M = 15;

  const auto color = make_optimal_color_mapping(tree, M);
  const LabelTreeMapping label(tree, M);
  const LabelTreeMapping label_norec(tree, M,
                                     LabelTreeMapping::Retrieval::kRecursive);
  const ModuloMapping naive(tree, M);
  const RandomMapping random(tree, M, 5);

  std::cout << "tree: " << levels << " levels (" << tree.size()
            << " nodes), M=" << M << " modules, " << accesses
            << " mixed template accesses of size " << M << "\n\n";

  const auto workload = Workload::mixed(tree, M, accesses, 2718);
  const ParallelAccessSimulator sim(threads);

  TableWriter table({"mapping", "rounds", "vs ideal", "worst access",
                     "wall s", "Maccesses/s"});
  for (const TreeMapping* mapping :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&label_norec),
        static_cast<const TreeMapping*>(&naive),
        static_cast<const TreeMapping*>(&random)}) {
    const auto report = sim.run(*mapping, workload);
    table.row(mapping->name(), report.total_rounds, report.slowdown(),
              report.max_rounds, report.wall_seconds,
              static_cast<double>(report.accesses) / 1e6 /
                  (report.wall_seconds > 0 ? report.wall_seconds : 1e-9));
  }
  table.print(std::cout);
  std::cout << "\n'rounds' is the simulated completion time in serialized "
               "memory rounds;\n'wall s' additionally reflects each "
               "mapping's address-computation cost.\n";
  return 0;
}
