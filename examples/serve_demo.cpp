// Serving demo: the pmtree::serve front-end end to end.
//
// Sixteen dictionary clients fire concurrent lookups at a Server; the
// admission controller bounds the queue, the dynamic batcher coalesces
// co-pending searches into composite template instances, and every batch
// runs through the cycle engine as one parallel memory access. The demo
// prints the SLO view — p50/p99/p999 latency, shed counts, batch
// occupancy — for the paper's COLOR mapping vs the modulo baseline on
// the same request stream, then shows a deadline/backpressure run where
// admission control visibly sheds and expires work.
//
//   $ ./serve_demo [levels] [lookups]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "pmtree/apps/dictionary.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/serve/clients.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;
  using namespace pmtree::serve;

  const std::uint32_t levels =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 12;
  const std::size_t lookups =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 5000;

  // A dictionary over sequential keys: the clients' shared tree.
  std::vector<Dictionary::Key> keys(tree_size(levels));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<Dictionary::Key>(3 * i);
  }
  const Dictionary dict(keys);
  std::cout << "serving " << lookups << " lookups against a " << levels
            << "-level dictionary (" << dict.size() << " keys), 16 clients\n\n";

  const ColorMapping color = make_optimal_color_mapping(dict.tree(), 15);
  const ModuloMapping naive(dict.tree(), color.num_modules());

  ServerOptions opts;
  opts.tick_cycles = 4;
  opts.batch.max_batch_nodes = 64;
  opts.batch.max_wait_cycles = 8;
  opts.admission.queue_bound = 64;

  TableWriter table({"mapping", "ok", "batches", "coalesced", "p50", "p99",
                     "p999"});
  for (const TreeMapping* map :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&naive)}) {
    Server server(*map, opts);
    std::vector<DictionaryClient> clients;
    clients.reserve(16);
    for (std::uint32_t c = 0; c < 16; ++c) clients.emplace_back(dict, c);
    // A skewed stream: a quarter of the traffic hammers one hot key, the
    // rest is uniform — the regime where batching coalesces real work.
    Rng rng(1);
    for (std::size_t i = 0; i < lookups; ++i) {
      const Dictionary::Key key =
          rng.chance(1, 4)
              ? keys[keys.size() / 2]
              : static_cast<Dictionary::Key>(rng.below(3 * keys.size()));
      clients[rng.below(16)].submit_search(server, key,
                                           /*submit_cycle=*/i / 4);
    }
    const ServeReport report = server.run();
    const Json& m = report.metrics;
    table.row(map->name(), report.count(RequestStatus::kOk),
              report.batches.size(),
              m.find("batches")->find("coalesced_nodes")->as_uint(),
              m.find("latency")->find("p50")->as_uint(),
              m.find("latency")->find("p99")->as_uint(),
              m.find("latency")->find("p999")->as_uint());
  }
  std::cout << "SLO view, same stream, two mappings:\n";
  table.print(std::cout);

  // Admission control under pressure: a tiny queue and a dense stream
  // with mixed deadline budgets. Arrivals that find the queue full shed;
  // tight-deadline requests stuck behind the batcher's wait budget
  // expire; the rest are served — and nothing is left unresolved.
  ServerOptions pressured = opts;
  pressured.admission.queue_bound = 4;
  Server server(color, pressured);
  DictionaryClient client(dict, 0);
  Rng rng(2);
  const std::size_t burst = std::min<std::size_t>(lookups, 512);
  for (std::size_t i = 0; i < burst; ++i) {
    client.submit_search(server, static_cast<Dictionary::Key>(
                                     rng.below(3 * keys.size())),
                         /*submit_cycle=*/i / 2,
                         /*deadline_cycles=*/rng.chance(1, 3) ? 6 : 48);
  }
  const ServeReport report = server.run();
  std::cout << "\ndense burst of " << report.responses.size()
            << " lookups (deadlines 6 or 48) into a queue of 4:\n"
            << "  ok " << report.count(RequestStatus::kOk) << ", shed "
            << report.count(RequestStatus::kShed) << ", expired "
            << report.count(RequestStatus::kExpired) << ", final cycle "
            << report.final_cycle << "\n";
  return 0;
}
