// Cycle-accurate engine demo: drives one workload through the module
// queues under different arrival schedules and prints the trajectory view
// the aggregate cost models can't show — queue-depth high-water marks and
// access-latency percentiles — plus the metrics-registry JSON snapshot.
//
//   $ ./engine_demo [levels] [accesses]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "pmtree/engine/engine.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;
  using engine::ArrivalSchedule;
  using engine::CycleEngine;
  using engine::EngineResult;

  const std::uint32_t levels =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 14;
  const std::size_t accesses =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 5000;

  const CompleteBinaryTree tree(levels);
  const std::uint32_t M = 15;
  const auto color = make_optimal_color_mapping(tree, M);
  const ModuloMapping naive(tree, M);
  const auto workload = Workload::mixed(tree, M, accesses, 31415);

  std::cout << "tree: " << levels << " levels, M=" << M << " modules, "
            << workload.size() << " mixed accesses\n\n";

  TableWriter table({"mapping", "arrivals", "cycles", "throughput",
                     "q depth max", "p50", "p95", "p99", "max"});
  engine::MetricsRegistry registry;
  for (const TreeMapping* mapping :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&naive)}) {
    for (const ArrivalSchedule& schedule :
         {ArrivalSchedule::all_at_once(), ArrivalSchedule::fixed_rate(2),
          ArrivalSchedule::bursty(32, 64), ArrivalSchedule::serialized()}) {
      const CycleEngine eng(*mapping, &registry,
                            mapping->name() + "/" + schedule.name());
      const EngineResult r = eng.run(workload, schedule);
      table.row(mapping->name(), schedule.name(), r.completion_cycle,
                r.throughput(), r.max_queue_depth(), r.latency.p50(),
                r.latency.p95(), r.latency.p99(), r.latency.max());
    }
  }
  table.print(std::cout);
  std::cout << "\nLatencies are in cycles from arrival to last request "
               "served.\nAll-at-once reproduces the batch makespan; "
               "serialized reproduces\nthe paper's per-access rounds; the "
               "open-loop schedules show the\nqueueing behaviour in "
               "between.\n\nMetrics registry snapshot (truncated to COLOR "
               "all-at-once):\n";
  // Print one representative instrument group instead of the full dump.
  const std::string key = color.name() + "/all-at-once.latency";
  if (const auto* hist = registry.find_histogram(key); hist != nullptr) {
    std::cout << "  " << key << ": count=" << hist->count()
              << " p50=" << hist->p50() << " p95=" << hist->p95()
              << " p99=" << hist->p99() << " max=" << hist->max() << "\n";
  }
  std::cout << "  (full registry: " << registry.size()
            << " instruments; export with MetricsRegistry::to_json)\n";
  return 0;
}
