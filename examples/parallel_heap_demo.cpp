// Parallel-heap demo (the paper's Section 1.1 motivating application).
//
// A binary min-heap whose every operation touches a leaf-to-root path is
// run against three memory mappings; the demo reports how many serialized
// memory rounds each mapping needs for the same operation stream.
//
//   $ ./parallel_heap_demo [levels] [operations]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "pmtree/apps/parallel_heap.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/pms/memory_system.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmtree;

  const std::uint32_t levels =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 14;
  const std::size_t operations =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 20000;

  // Pre-generate one operation stream (2/3 inserts, 1/3 extract-mins) and
  // record the paths it accesses, so every mapping sees identical traffic.
  ParallelHeap heap(levels);
  Rng rng(1234);
  std::vector<std::vector<Node>> accesses;
  accesses.reserve(operations);
  std::uint64_t inserts = 0, extracts = 0;
  for (std::size_t op = 0; op < operations; ++op) {
    const bool do_insert =
        heap.size() == 0 || (heap.size() < heap.capacity() && rng.chance(2, 3));
    if (do_insert) {
      accesses.push_back(heap.insert(static_cast<ParallelHeap::Key>(rng.below(1u << 30))));
      ++inserts;
    } else {
      ParallelHeap::Key out;
      accesses.push_back(heap.extract_min(&out));
      ++extracts;
    }
  }
  std::cout << "heap levels=" << levels << "  operations=" << operations
            << " (" << inserts << " inserts, " << extracts << " extract-mins)\n\n";

  // COLOR sized so full leaf-to-root paths (length = levels) are CF.
  const std::uint32_t k = 3;
  const ColorMapping color(CompleteBinaryTree(levels), levels, k);
  const LabelTreeMapping label(CompleteBinaryTree(levels), color.num_modules());
  const ModuloMapping naive(CompleteBinaryTree(levels), color.num_modules());

  TableWriter table({"mapping", "modules", "total rounds", "rounds/op",
                     "worst op", "vs ideal"});
  for (const TreeMapping* mapping :
       {static_cast<const TreeMapping*>(&color),
        static_cast<const TreeMapping*>(&label),
        static_cast<const TreeMapping*>(&naive)}) {
    MemorySystem pms(*mapping);
    for (const auto& access : accesses) pms.access(access);
    table.row(mapping->name(), mapping->num_modules(), pms.total_rounds(),
              pms.round_stats().mean(), pms.round_stats().max(),
              static_cast<double>(pms.total_rounds()) /
                  static_cast<double>(pms.ideal_rounds()));
  }
  table.print(std::cout);
  std::cout << "\nCOLOR serves every heap operation in a single memory "
               "round; the naive layout serializes.\n";
  return 0;
}
