// verify_paper — the paper, checked in one run.
//
// Executes every theorem/lemma verdict on a representative configuration
// set and prints a PASS/FAIL summary. This is the fast entry point for
// "did the reproduction actually hold?"; the bench binaries regenerate the
// full tables (see EXPERIMENTS.md).
//
//   $ ./verify_paper            # exit code 0 iff every verdict passes
#include <cstdint>
#include <iostream>
#include <string>

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/analysis/verify.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/table.hpp"

namespace {

using namespace pmtree;

struct Summary {
  TableWriter table{{"claim", "configuration", "measured", "bound", "verdict"}};
  int failures = 0;

  void record(const std::string& claim, const std::string& config,
              std::uint64_t measured, std::uint64_t bound, bool ok) {
    table.row(claim, config, measured, bound, ok ? "PASS" : "FAIL");
    failures += ok ? 0 : 1;
  }
};

void check_theorem_1_3(Summary& summary) {
  const struct {
    std::uint32_t H, N, k;
  } configs[] = {{10, 4, 2}, {12, 5, 3}, {14, 6, 3}, {15, 8, 4}};
  for (const auto& cfg : configs) {
    const ColorMapping map(CompleteBinaryTree(cfg.H), cfg.N, cfg.k);
    const auto verdict = verify_cf_elementary(map, tree_size(cfg.k), cfg.N);
    summary.record("Thm 1/3: CF on S(K), P(N)",
                   "H=" + std::to_string(cfg.H) + " N=" + std::to_string(cfg.N) +
                       " k=" + std::to_string(cfg.k),
                   verdict.measured, verdict.bound, verdict.ok);
  }
}

void check_theorem_2(Summary& summary) {
  const struct {
    std::uint32_t N, k;
  } configs[] = {{5, 2}, {6, 3}, {9, 4}};
  for (const auto& cfg : configs) {
    const ColorMapping map(CompleteBinaryTree(cfg.N + 2), cfg.N, cfg.k);
    const auto verdict = verify_optimality_witness(map, cfg.N, cfg.k);
    summary.record("Thm 2: TP(K,N-k) witness",
                   "N=" + std::to_string(cfg.N) + " k=" + std::to_string(cfg.k),
                   verdict.measured, verdict.bound, verdict.ok);
  }
}

void check_theorem_4_5(Summary& summary) {
  for (const std::uint32_t m : {2u, 3u, 4u}) {
    const auto M = static_cast<std::uint32_t>(tree_size(m));
    const ColorMapping map =
        make_optimal_color_mapping(CompleteBinaryTree(M + 2), M);
    const auto verdict = verify_full_parallelism(map);
    summary.record("Thm 4/5: cost <= 1 at size M", "M=" + std::to_string(M),
                   verdict.measured, verdict.bound, verdict.ok);
  }
}

void check_lemma_2(Summary& summary) {
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    const std::uint32_t N = k + 3;
    const BasicColorMapping map(CompleteBinaryTree(N), N, k);
    const auto verdict = verify_level_cost(map, tree_size(k), 1);
    summary.record("Lemma 2: L(K) <= 1 per block",
                   "N=" + std::to_string(N) + " k=" + std::to_string(k),
                   verdict.measured, verdict.bound, verdict.ok);
  }
}

void check_lemmas_3_4_5(Summary& summary) {
  const std::uint32_t M = 7;
  const EagerColorMapping map(
      make_optimal_color_mapping(CompleteBinaryTree(14), M));
  for (const std::uint64_t D : {9u, 13u}) {
    const auto measured = evaluate_paths(map, D).max_conflicts;
    const auto bound = bounds::color_path_bound(D, M);
    summary.record("Lemma 3: P(D) bound", "D=" + std::to_string(D), measured,
                   bound, measured <= bound);
  }
  for (const std::uint64_t D : {14u, 56u}) {
    const auto measured = evaluate_level_runs(map, D).max_conflicts;
    const auto bound = bounds::color_level_bound(D, M);
    summary.record("Lemma 4: L(D) bound", "D=" + std::to_string(D), measured,
                   bound, measured <= bound);
  }
  for (const std::uint32_t d : {4u, 7u}) {
    const std::uint64_t D = tree_size(d);
    const auto measured = evaluate_subtrees(map, D).max_conflicts;
    const auto bound = bounds::color_subtree_bound(D, M);
    summary.record("Lemma 5: S(D) bound", "D=" + std::to_string(D), measured,
                   bound, measured <= bound);
  }
}

void check_theorem_6(Summary& summary) {
  const std::uint32_t M = 15;
  const EagerColorMapping map(
      make_optimal_color_mapping(CompleteBinaryTree(16), M));
  Rng rng(99);
  for (const std::uint64_t c : {2u, 8u}) {
    const std::uint64_t D = 512;
    const auto cost = sample_composites(map, D, c, 100, rng);
    const auto bound = bounds::color_composite_bound(D, M, c);
    summary.record("Thm 6: C(D,c) bound",
                   "D=512 c=" + std::to_string(c), cost.max_conflicts, bound,
                   cost.instances > 0 && cost.max_conflicts <= bound);
  }
}

void check_theorem_7_8(Summary& summary) {
  for (const std::uint32_t M : {15u, 63u}) {
    const CompleteBinaryTree tree(14);
    const LabelTreeMapping map(tree, M);
    const auto envelope =
        static_cast<std::uint64_t>(4.0 * bounds::label_tree_m_scale(M) + 2.0);
    const auto s = evaluate_subtrees(map, M).max_conflicts;
    summary.record("Thm 7: LABEL-TREE S(M) scale", "M=" + std::to_string(M), s,
                   envelope, s <= envelope);
    const auto balance = load_balance(map);
    summary.record("Thm 7: load ratio <= 1.1 (x1000)",
                   "M=" + std::to_string(M),
                   static_cast<std::uint64_t>(balance.ratio() * 1000), 1100,
                   balance.ratio() <= 1.1);
  }
}

}  // namespace

int main() {
  Summary summary;
  check_theorem_1_3(summary);
  check_theorem_2(summary);
  check_theorem_4_5(summary);
  check_lemma_2(summary);
  check_lemmas_3_4_5(summary);
  check_theorem_6(summary);
  check_theorem_7_8(summary);

  summary.table.print(std::cout);
  std::cout << '\n'
            << (summary.failures == 0
                    ? "all paper claims verified."
                    : std::to_string(summary.failures) + " claim(s) FAILED.")
            << '\n';
  return summary.failures == 0 ? 0 : 1;
}
