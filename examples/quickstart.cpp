// Quickstart: map a complete binary tree onto a parallel memory system
// with the paper's COLOR algorithm and observe conflict-free template
// access.
//
//   $ ./quickstart
//
// Walks through: picking parameters, building the mapping, asking for node
// addresses, and measuring the cost of subtree / path / level accesses.
#include <cstdint>
#include <iostream>

#include "pmtree/analysis/cost.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/pms/memory_system.hpp"
#include "pmtree/templates/instance.hpp"
#include "pmtree/util/bits.hpp"

int main() {
  using namespace pmtree;

  // A tree of 16 levels (65535 nodes) that we want to access by complete
  // subtrees of size K = 7 and ascending paths of N = 6 nodes.
  const CompleteBinaryTree tree(16);
  const std::uint32_t k = 3;  // K = 2^k - 1 = 7
  const std::uint32_t N = 6;

  // COLOR(T, N, K) uses the provably minimal number of memory modules for
  // conflict-free access to both templates: N + K - k.
  const ColorMapping mapping(tree, N, k);
  std::cout << "mapping   : " << mapping.name() << "\n"
            << "modules   : " << mapping.num_modules()
            << "  (optimal: no CF mapping can use fewer)\n\n";

  // Where does a node live? color_of is the addressing function.
  const Node example = v(12345, 14);
  std::cout << "node " << to_string(example) << " is stored on module "
            << mapping.color_of(example) << "\n\n";

  // Access a subtree, a path and a level run through the memory system.
  MemorySystem pms(mapping);
  const SubtreeInstance subtree{v(100, 8), 7};
  const PathInstance path{v(4321, 13), 6};
  const LevelRunInstance run{v(777, 12), 7};

  const auto s = pms.access(subtree.nodes());
  const auto p = pms.access(path.nodes());
  const auto l = pms.access(run.nodes());
  std::cout << "subtree S_7  : " << s.requests << " nodes in " << s.rounds
            << " round(s), " << s.conflicts << " conflict(s)\n";
  std::cout << "path    P_6  : " << p.requests << " nodes in " << p.rounds
            << " round(s), " << p.conflicts << " conflict(s)\n";
  std::cout << "level   L_7  : " << l.requests << " nodes in " << l.rounds
            << " round(s), " << l.conflicts << " conflict(s)\n\n";

  // The guarantee is for *every* instance, not just these three — check
  // the whole families exhaustively.
  std::cout << "worst case over ALL instances:\n";
  std::cout << "  S(7): " << evaluate_subtrees(mapping, 7).max_conflicts
            << " conflicts\n";
  std::cout << "  P(6): " << evaluate_paths(mapping, 6).max_conflicts
            << " conflicts\n";
  std::cout << "  L(7): " << evaluate_level_runs(mapping, 7).max_conflicts
            << " conflicts (Lemma 2 gives at most 1 inside one height-N "
               "block;\n        crossing a block-generation boundary can "
               "add one more)\n\n";

  // A naive mapping with the same module budget is far from conflict-free.
  const ModuloMapping naive(tree, mapping.num_modules());
  std::cout << "for comparison, " << naive.name() << ":\n";
  std::cout << "  S(7): " << evaluate_subtrees(naive, 7).max_conflicts
            << " conflicts\n";
  std::cout << "  P(6): " << evaluate_paths(naive, 6).max_conflicts
            << " conflicts\n";
  return 0;
}
