// Mapping inspector: a small CLI for exploring how the mappings place a
// tree onto memory modules.
//
//   $ ./mapping_inspector color <levels> <N> <k>
//   $ ./mapping_inspector labeltree <levels> <M>
//   $ ./mapping_inspector modulo <levels> <M>
//
// Prints the mapping's parameters, the per-level color layout for small
// trees, the per-module usage report, and the per-level worst-conflict
// profiles for the natural template sizes.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/analysis/profile.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/table.hpp"

namespace {

using namespace pmtree;

void usage(const char* argv0) {
  std::cerr << "usage:\n"
            << "  " << argv0 << " color <levels> <N> <k>\n"
            << "  " << argv0 << " labeltree <levels> <M>\n"
            << "  " << argv0 << " modulo <levels> <M>\n";
}

void print_layout(const TreeMapping& map) {
  const auto& tree = map.tree();
  if (tree.levels() > 6) {
    std::cout << "(tree too large to print the full layout)\n\n";
    return;
  }
  std::cout << "color layout (one row per level):\n";
  for (std::uint32_t j = 0; j < tree.levels(); ++j) {
    std::cout << "  L" << j << ":";
    for (std::uint64_t i = 0; i < tree.level_width(j); ++i) {
      std::cout << ' ' << map.color_of(v(i, j));
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

void print_usage_report(const TreeMapping& map) {
  const auto usage_rows = color_report(map);
  const auto balance = load_balance(map);
  TableWriter table({"module", "nodes", "first level", "last level"});
  for (std::uint32_t c = 0; c < usage_rows.size(); ++c) {
    const ColorUsage& u = usage_rows[c];
    if (!u.used) {
      table.row(c, 0, "-", "-");
    } else {
      table.row(c, u.nodes, u.first_level, u.last_level);
    }
  }
  table.print(std::cout);
  std::cout << "load ratio (max/min over used modules): " << balance.ratio()
            << "\n\n";
}

void print_profiles(const TreeMapping& map, std::uint64_t K, std::uint32_t N) {
  const auto sp = subtree_profile(map, K);
  const auto lp = level_run_profile(map, K);
  const auto pp = path_profile(map, N);
  TableWriter table({"level", "worst S(K) rooted here", "worst L(K) here",
                     "worst P(N) starting here"});
  for (std::uint32_t j = 0; j < map.tree().levels(); ++j) {
    table.row(j, sp.worst_by_level[j], lp.worst_by_level[j],
              pp.worst_by_level[j]);
  }
  table.print(std::cout);
  std::cout << "overall: S(K)=" << sp.overall << "  L(K)=" << lp.overall
            << "  P(N)=" << pp.overall << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    usage(argv[0]);
    return 1;
  }
  const std::string kind = argv[1];
  const auto levels = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (levels < 1 || levels > 24) {
    std::cerr << "levels must be in [1, 24] for inspection\n";
    return 1;
  }
  const CompleteBinaryTree tree(levels);

  std::unique_ptr<TreeMapping> map;
  std::uint64_t K = 3;
  std::uint32_t N = std::min(levels, 5u);
  if (kind == "color" && argc == 5) {
    N = static_cast<std::uint32_t>(std::atoi(argv[3]));
    const auto k = static_cast<std::uint32_t>(std::atoi(argv[4]));
    if (k < 1 || k > N || (levels > N && N <= k)) {
      std::cerr << "need 1 <= k <= N, and N > k for trees taller than N\n";
      return 1;
    }
    K = tree_size(k);
    map = std::make_unique<ColorMapping>(tree, N, k);
  } else if (kind == "labeltree" && argc == 4) {
    const auto M = static_cast<std::uint32_t>(std::atoi(argv[3]));
    if (M < 3) {
      std::cerr << "M must be >= 3\n";
      return 1;
    }
    map = std::make_unique<LabelTreeMapping>(tree, M);
    K = tree_size(std::min(ceil_log2(M), levels));
  } else if (kind == "modulo" && argc == 4) {
    const auto M = static_cast<std::uint32_t>(std::atoi(argv[3]));
    if (M < 1) {
      std::cerr << "M must be >= 1\n";
      return 1;
    }
    map = std::make_unique<ModuloMapping>(tree, M);
  } else {
    usage(argv[0]);
    return 1;
  }

  std::cout << "mapping: " << map->name() << " on " << map->num_modules()
            << " modules, tree of " << levels << " levels (" << tree.size()
            << " nodes)\n\n";
  print_layout(*map);
  print_usage_report(*map);
  print_profiles(*map, std::min(K, tree.size()), N);
  return 0;
}
