// Two-dimensional array templates — the sibling problem the paper's
// Section 1.2 builds on ("the problem of conflict-free mapping and access
// to two-dimensional array data structures ... where templates of interest
// are rows, columns, diagonals, and subarrays", refs [4], [17]).
//
// pmtree includes this substrate so the tree results can be situated
// against the classical array results: the skewing schemes here are the
// array-world analogue of COLOR (conflict-free for a template menu, at
// the cost of structure), and bench_e13 regenerates the comparison.
//
// An Array2D is a shape (rows x cols); cells are (row, col) coordinates.
// Template instances mirror the tree ones: straight runs along a row,
// column, (anti)diagonal, and dense subarray blocks.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pmtree {

struct Cell {
  std::uint64_t row = 0;
  std::uint64_t col = 0;

  friend constexpr bool operator==(const Cell&, const Cell&) = default;
  friend constexpr auto operator<=>(const Cell&, const Cell&) = default;
};

[[nodiscard]] inline std::string to_string(Cell c) {
  return "(" + std::to_string(c.row) + ", " + std::to_string(c.col) + ")";
}

class Array2D {
 public:
  constexpr Array2D(std::uint64_t rows, std::uint64_t cols) noexcept
      : rows_(rows), cols_(cols) {
    assert(rows >= 1 && cols >= 1);
  }

  [[nodiscard]] constexpr std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr std::uint64_t cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return rows_ * cols_;
  }
  [[nodiscard]] constexpr bool contains(Cell c) const noexcept {
    return c.row < rows_ && c.col < cols_;
  }

  friend constexpr bool operator==(const Array2D&, const Array2D&) = default;

 private:
  std::uint64_t rows_;
  std::uint64_t cols_;
};

/// Straight-line run directions.
enum class RunDirection : std::uint8_t {
  kRow,           ///< (r, c), (r, c+1), ...
  kColumn,        ///< (r, c), (r+1, c), ...
  kDiagonal,      ///< (r, c), (r+1, c+1), ...
  kAntiDiagonal,  ///< (r, c), (r+1, c-1), ...
};

[[nodiscard]] constexpr const char* to_string(RunDirection d) noexcept {
  switch (d) {
    case RunDirection::kRow: return "row";
    case RunDirection::kColumn: return "column";
    case RunDirection::kDiagonal: return "diagonal";
    case RunDirection::kAntiDiagonal: return "antidiagonal";
  }
  return "?";
}

/// K consecutive cells along a direction, starting at `start`.
struct RunInstance {
  Cell start;
  RunDirection direction = RunDirection::kRow;
  std::uint64_t size = 1;

  [[nodiscard]] bool fits(const Array2D& array) const noexcept;
  [[nodiscard]] std::vector<Cell> cells() const;
};

/// A dense p x q block anchored at its top-left cell.
struct SubarrayInstance {
  Cell top_left;
  std::uint64_t height = 1;  ///< p: rows
  std::uint64_t width = 1;   ///< q: cols

  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return height * width;
  }
  [[nodiscard]] constexpr bool fits(const Array2D& array) const noexcept {
    return top_left.row + height <= array.rows() &&
           top_left.col + width <= array.cols();
  }
  [[nodiscard]] std::vector<Cell> cells() const;
};

}  // namespace pmtree
