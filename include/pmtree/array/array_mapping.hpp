// Array mappings (Section 1.2 context, refs [4] Colbourn-Heinrich and
// [17] Kim-Prasanna).
//
// ArrayMapping is the array-side analogue of TreeMapping. Two schemes:
//
//   * RowMajorArrayMapping — color = (r*cols + c) mod M, the naive layout:
//     perfect on row runs, terrible on columns whenever gcd(cols, M) != 1.
//
//   * SkewedArrayMapping — color = (a*r + c) mod M, the classical linear
//     skewing / Latin-square scheme. Conflict-freeness is arithmetic:
//     a run of K <= M cells along direction (dr, dc) steps the color by
//     s = a*dr + dc each time, so the run is conflict-free iff
//     gcd(s mod M, M) produces no repeat within K steps — in particular,
//     with M prime and a chosen so that a, a+1, a-1 are all nonzero
//     mod M, rows, columns and both diagonals of length <= M are all
//     conflict-free simultaneously. With a = q, any p x q subarray with
//     p*q <= M is conflict-free too (colors a*dr + dc for dr < p, dc < q
//     are distinct base-q digit pairs).
//
// conflict_free_run_bound() exposes the exact arithmetic so tests can
// check measured behaviour against the closed form.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <string>

#include "pmtree/array/array2d.hpp"

namespace pmtree {

using ArrayColor = std::uint32_t;

class ArrayMapping {
 public:
  explicit ArrayMapping(Array2D array) noexcept : array_(array) {}
  virtual ~ArrayMapping() = default;

  ArrayMapping(const ArrayMapping&) = default;
  ArrayMapping& operator=(const ArrayMapping&) = delete;

  [[nodiscard]] virtual ArrayColor color_of(Cell c) const = 0;
  [[nodiscard]] virtual std::uint32_t num_modules() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const Array2D& array() const noexcept { return array_; }

 private:
  Array2D array_;
};

class RowMajorArrayMapping final : public ArrayMapping {
 public:
  RowMajorArrayMapping(Array2D array, std::uint32_t M)
      : ArrayMapping(array), M_(M) {}

  [[nodiscard]] ArrayColor color_of(Cell c) const override {
    return static_cast<ArrayColor>((c.row * array().cols() + c.col) % M_);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "ROW-MAJOR(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

class SkewedArrayMapping final : public ArrayMapping {
 public:
  /// color(r, c) = (a*r + c) mod M.
  SkewedArrayMapping(Array2D array, std::uint32_t M, std::uint32_t a)
      : ArrayMapping(array), M_(M), a_(a) {}

  [[nodiscard]] ArrayColor color_of(Cell c) const override {
    return static_cast<ArrayColor>((c.row * a_ + c.col) % M_);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "SKEW(a=" + std::to_string(a_) + ",M=" + std::to_string(M_) + ")";
  }
  [[nodiscard]] std::uint32_t skew() const noexcept { return a_; }

  /// The color step along a direction: s = a*dr + dc mod M.
  [[nodiscard]] std::uint32_t step(RunDirection d) const noexcept {
    switch (d) {
      case RunDirection::kRow: return 1 % M_;
      case RunDirection::kColumn: return a_ % M_;
      case RunDirection::kDiagonal: return (a_ + 1) % M_;
      case RunDirection::kAntiDiagonal: return (a_ + M_ - 1) % M_;
    }
    return 0;
  }

  /// Longest conflict-free run along a direction: a run stepping by s
  /// repeats a color after exactly M / gcd(s, M) cells (and never, i.e.
  /// bound M, when gcd = 1). A step of 0 repeats immediately (bound 1).
  [[nodiscard]] std::uint64_t conflict_free_run_bound(RunDirection d) const noexcept {
    const std::uint32_t s = step(d);
    if (s == 0) return 1;
    return M_ / std::gcd(s, M_);
  }

 private:
  std::uint32_t M_;
  std::uint32_t a_;
};

/// Conflicts of one access (max module multiplicity - 1), array flavour.
[[nodiscard]] std::uint64_t array_conflicts(const ArrayMapping& mapping,
                                            std::span<const Cell> cells);

/// Exhaustive worst-case conflicts over all K-cell runs of a direction.
[[nodiscard]] std::uint64_t evaluate_runs(const ArrayMapping& mapping,
                                          RunDirection direction,
                                          std::uint64_t K);

/// Exhaustive worst-case conflicts over all p x q subarrays.
[[nodiscard]] std::uint64_t evaluate_subarrays(const ArrayMapping& mapping,
                                               std::uint64_t p, std::uint64_t q);

}  // namespace pmtree
