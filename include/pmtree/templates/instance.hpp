// Template instances (Section 2.1 of the paper).
//
// A template instance is a concrete subset of tree nodes accessed together
// in one parallel memory operation:
//
//   * SubtreeInstance   S_K(i, j)  — complete subtree of size K = 2^k - 1
//                                    rooted at v(i, j);
//   * LevelRunInstance  L_K(i, j)  — K consecutive nodes v(i..i+K-1, j);
//   * PathInstance      P_K(i, j)  — the K nodes from v(i, j) up to
//                                    ANC(i, j, K-1) (ascending path);
//   * CompositeInstance C(D, c)    — union of c pairwise-disjoint
//                                    elementary instances, D nodes total.
//
// Instances are small value types; `nodes()` materializes the node set in a
// canonical order (subtree: BFS; level run: left-to-right; path: bottom-up).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

enum class TemplateKind : std::uint8_t { kSubtree, kLevelRun, kPath };

[[nodiscard]] constexpr const char* to_string(TemplateKind k) noexcept {
  switch (k) {
    case TemplateKind::kSubtree: return "S";
    case TemplateKind::kLevelRun: return "L";
    case TemplateKind::kPath: return "P";
  }
  return "?";
}

/// S_K(i, j): complete subtree of size K rooted at `root`.
struct SubtreeInstance {
  Node root;
  std::uint64_t size = 1;  ///< K = 2^k - 1

  [[nodiscard]] constexpr std::uint32_t levels() const noexcept {
    return tree_levels(size);
  }

  /// True iff the instance fits inside `tree`.
  [[nodiscard]] constexpr bool fits(const CompleteBinaryTree& tree) const noexcept {
    return tree.contains(root) && root.level + levels() <= tree.levels();
  }

  /// Nodes in BFS (level-by-level, left-to-right) order.
  [[nodiscard]] std::vector<Node> nodes() const;
  /// Appends nodes() to `out` without clearing it — the allocation-free
  /// form the evaluation loops feed a reused buffer through.
  void append_nodes(std::vector<Node>& out) const;
  /// Validated form: appends nodes() only if `size` is a legal subtree
  /// size (2^k - 1) and the instance fits inside `tree`; otherwise leaves
  /// `out` untouched and returns false. The unchecked form materializes
  /// whatever coordinates the fields imply — callers building instances
  /// from untrusted parameters (dyn mutations, parsed requests) must use
  /// this one.
  [[nodiscard]] bool try_append_nodes(const CompleteBinaryTree& tree,
                                      std::vector<Node>& out) const;
};

/// L_K(i, j): `size` consecutive nodes of one level starting at `first`.
struct LevelRunInstance {
  Node first;
  std::uint64_t size = 1;

  [[nodiscard]] constexpr bool fits(const CompleteBinaryTree& tree) const noexcept {
    return tree.contains(first) && first.index + size <= pow2(first.level);
  }

  /// Nodes left-to-right.
  [[nodiscard]] std::vector<Node> nodes() const;
  /// Appends nodes() to `out` without clearing it.
  void append_nodes(std::vector<Node>& out) const;
  /// Validated form: requires size >= 1 and fits(tree); on failure leaves
  /// `out` untouched and returns false.
  [[nodiscard]] bool try_append_nodes(const CompleteBinaryTree& tree,
                                      std::vector<Node>& out) const;
};

/// P_K(i, j): `size` nodes of the ascending path starting at `start`
/// (deepest node) and ending at its (size-1)-st ancestor.
struct PathInstance {
  Node start;
  std::uint64_t size = 1;

  [[nodiscard]] constexpr bool fits(const CompleteBinaryTree& tree) const noexcept {
    return tree.contains(start) && size <= std::uint64_t{start.level} + 1;
  }

  /// Nodes bottom-up (start first, topmost ancestor last).
  [[nodiscard]] std::vector<Node> nodes() const;
  /// Appends nodes() to `out` without clearing it.
  void append_nodes(std::vector<Node>& out) const;
  /// Validated form: requires size >= 1 and fits(tree) (the path may not
  /// climb past the root); on failure leaves `out` untouched and returns
  /// false.
  [[nodiscard]] bool try_append_nodes(const CompleteBinaryTree& tree,
                                      std::vector<Node>& out) const;
};

/// Any elementary instance.
class ElementaryInstance {
 public:
  ElementaryInstance(SubtreeInstance s) : alt_(s) {}          // NOLINT(google-explicit-constructor)
  ElementaryInstance(LevelRunInstance l) : alt_(l) {}         // NOLINT(google-explicit-constructor)
  ElementaryInstance(PathInstance p) : alt_(p) {}             // NOLINT(google-explicit-constructor)

  [[nodiscard]] TemplateKind kind() const noexcept {
    if (std::holds_alternative<SubtreeInstance>(alt_)) return TemplateKind::kSubtree;
    if (std::holds_alternative<LevelRunInstance>(alt_)) return TemplateKind::kLevelRun;
    return TemplateKind::kPath;
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    return std::visit([](const auto& i) { return i.size; }, alt_);
  }

  [[nodiscard]] bool fits(const CompleteBinaryTree& tree) const noexcept {
    return std::visit([&](const auto& i) { return i.fits(tree); }, alt_);
  }

  [[nodiscard]] std::vector<Node> nodes() const {
    return std::visit([](const auto& i) { return i.nodes(); }, alt_);
  }

  void append_nodes(std::vector<Node>& out) const {
    std::visit([&](const auto& i) { i.append_nodes(out); }, alt_);
  }

  [[nodiscard]] bool try_append_nodes(const CompleteBinaryTree& tree,
                                      std::vector<Node>& out) const {
    return std::visit(
        [&](const auto& i) { return i.try_append_nodes(tree, out); }, alt_);
  }

  template <typename T>
  [[nodiscard]] const T* get_if() const noexcept {
    return std::get_if<T>(&alt_);
  }

 private:
  std::variant<SubtreeInstance, LevelRunInstance, PathInstance> alt_;
};

/// C(D, c): a composite instance — `c` pairwise-disjoint elementary
/// instances with D total nodes.
class CompositeInstance {
 public:
  CompositeInstance() = default;
  explicit CompositeInstance(std::vector<ElementaryInstance> parts)
      : parts_(std::move(parts)) {}

  void add(ElementaryInstance part) { parts_.push_back(std::move(part)); }

  [[nodiscard]] const std::vector<ElementaryInstance>& parts() const noexcept {
    return parts_;
  }

  /// c — number of constituent elementary instances.
  [[nodiscard]] std::uint64_t component_count() const noexcept {
    return parts_.size();
  }

  /// D — total number of nodes.
  [[nodiscard]] std::uint64_t size() const noexcept;

  [[nodiscard]] bool fits(const CompleteBinaryTree& tree) const noexcept;

  /// All nodes, concatenated in component order.
  [[nodiscard]] std::vector<Node> nodes() const;
  /// Appends nodes() to `out` without clearing it.
  void append_nodes(std::vector<Node>& out) const;
  /// Validated form: appends every component's nodes only if ALL
  /// components pass their own try_append_nodes checks. All-or-nothing:
  /// on failure `out` is restored to its original length and the call
  /// returns false — no partially materialized composite escapes.
  [[nodiscard]] bool try_append_nodes(const CompleteBinaryTree& tree,
                                      std::vector<Node>& out) const;

  /// True iff the components are pairwise node-disjoint (the paper's
  /// C-template requires this). O(D log D).
  [[nodiscard]] bool is_disjoint() const;

 private:
  std::vector<ElementaryInstance> parts_;
};

}  // namespace pmtree
