// Random sampling of template instances for large trees, where exhaustive
// enumeration is intractable. Used by benches (sampled-maximum conflict
// estimation) and by workload generators.
//
// All samplers draw uniformly over the instance family of the requested
// size, using the deterministic pmtree::Rng so runs are reproducible.
#pragma once

#include <cstdint>
#include <optional>

#include "pmtree/templates/instance.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

/// Uniform random S_K instance. Returns nullopt if none fits.
[[nodiscard]] std::optional<SubtreeInstance> sample_subtree(
    const CompleteBinaryTree& tree, std::uint64_t K, Rng& rng);

/// Uniform random L_K instance. Returns nullopt if none fits.
[[nodiscard]] std::optional<LevelRunInstance> sample_level_run(
    const CompleteBinaryTree& tree, std::uint64_t K, Rng& rng);

/// Uniform random P_K instance. Returns nullopt if none fits.
[[nodiscard]] std::optional<PathInstance> sample_path(
    const CompleteBinaryTree& tree, std::uint64_t K, Rng& rng);

/// Controls for sample_composite.
struct CompositeSpec {
  std::uint64_t total_size = 0;     ///< D: target total node count
  std::uint64_t components = 1;     ///< c: number of elementary components
  bool allow_subtrees = true;
  bool allow_level_runs = true;
  bool allow_paths = true;
};

/// Samples a C(D, c) instance: c pairwise-disjoint elementary instances
/// totalling (approximately, then exactly by trimming the last level-run /
/// path component) D nodes. Retries until disjointness holds; returns
/// nullopt if the tree is too small to host the request.
[[nodiscard]] std::optional<CompositeInstance> sample_composite(
    const CompleteBinaryTree& tree, const CompositeSpec& spec, Rng& rng);

}  // namespace pmtree
