// Range-query decomposition (Section 1.1 of the paper):
//
//   "In a B-tree, implemented as a complete tree, a range query means
//    accessing (in parallel) all the nodes whose keys belong to a given
//    range; that is, the set of nodes to be accessed can be partitioned
//    into a composite template consisting of a set of complete subtrees
//    and a path of cardinality no larger than the height of the B-tree."
//
// subtree_cover() computes the canonical (maximal, disjoint) set of
// complete subtrees whose leaves are exactly the leaf interval [lo, hi] —
// the classic segment-tree decomposition, at most 2*(levels-1) subtrees.
//
// range_query_template() additionally includes the search paths: the
// ancestors of the boundary subtrees that a top-down range search visits,
// expressed as at most two disjoint ascending P-template instances.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/templates/instance.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

/// Maximal disjoint complete subtrees covering exactly leaves [lo, hi]
/// (inclusive leaf indices, lo <= hi < tree.num_leaves()).
[[nodiscard]] std::vector<SubtreeInstance> subtree_cover(
    const CompleteBinaryTree& tree, std::uint64_t lo, std::uint64_t hi);

/// The full range-query composite template: the subtree cover plus the
/// (up to two) ascending paths of internal nodes visited while locating
/// the boundaries. All components are pairwise disjoint.
[[nodiscard]] CompositeInstance range_query_template(
    const CompleteBinaryTree& tree, std::uint64_t lo, std::uint64_t hi);

}  // namespace pmtree
