// Exhaustive enumeration of template families (Section 2.1):
//
//   S^T(K) — all complete size-K subtrees of T;
//   L^T(K) — all runs of K consecutive nodes within one level;
//   P^T(K) — all ascending paths of K nodes.
//
// Enumeration drives the exhaustive conflict-cost evaluation used by the
// theorem-verification tests and benches. Visitors receive lightweight
// instance descriptors; they may materialize nodes on demand.
//
// Counting helpers expose the family sizes in closed form so tests can
// assert the enumerators are complete.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "pmtree/templates/instance.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

/// Visits every instance of S^T(K). Precondition: is_tree_size(K).
/// Stops early if the visitor returns false.
void for_each_subtree(const CompleteBinaryTree& tree, std::uint64_t K,
                      const std::function<bool(const SubtreeInstance&)>& visit);

/// Visits every instance of L^T(K).
void for_each_level_run(const CompleteBinaryTree& tree, std::uint64_t K,
                        const std::function<bool(const LevelRunInstance&)>& visit);

/// Visits every instance of P^T(K) (paths of K nodes; the deepest node may
/// be at any level >= K-1).
void for_each_path(const CompleteBinaryTree& tree, std::uint64_t K,
                   const std::function<bool(const PathInstance&)>& visit);

/// Visits every TP_K(i, j) instance for the given j (Lemma 1's family):
/// the root-to-v(i, j-1) path plus the size-K subtree rooted at v(i, j-1),
/// truncated at the tree boundary.
void for_each_tp(const CompleteBinaryTree& tree, std::uint64_t K, std::uint32_t j,
                 const std::function<bool(const CompositeInstance&)>& visit);

// Indexed (random-access) forms of the enumerations above. `*_at(tree, K,
// idx)` returns the instance that the matching for_each_* visits at step
// `idx` — exactly the same order — so a chunked parallel loop over
// [0, count_*) sees the family identically to the sequential visitor.
// Preconditions: same as the enumerator, plus idx < the matching count.

/// Instance `idx` of S^T(K) in for_each_subtree order. (The roots are
/// visited in BFS-id order, so this is node_at(idx).)
[[nodiscard]] SubtreeInstance subtree_at(const CompleteBinaryTree& tree,
                                         std::uint64_t K, std::uint64_t idx);

/// Instance `idx` of L^T(K) in for_each_level_run order.
[[nodiscard]] LevelRunInstance level_run_at(const CompleteBinaryTree& tree,
                                            std::uint64_t K, std::uint64_t idx);

/// Instance `idx` of P^T(K) in for_each_path order.
[[nodiscard]] PathInstance path_at(const CompleteBinaryTree& tree,
                                   std::uint64_t K, std::uint64_t idx);

/// Instance `idx` of the union of TP_K(., j) families for j = 1..levels,
/// in (j ascending, i ascending) order — the order evaluate_tp scans.
/// (Anchors are visited in BFS-id order, so the anchor is node_at(idx).)
[[nodiscard]] CompositeInstance tp_at(const CompleteBinaryTree& tree,
                                      std::uint64_t K, std::uint64_t idx);

// Validated (total) forms of the indexed accessors. The unchecked `*_at`
// functions above assert their preconditions, which compile away under
// NDEBUG — an out-of-range `idx` or malformed `K` then silently yields an
// instance outside the family (or outside the tree entirely). These
// return nullopt instead, so callers that compute indices from untrusted
// or dynamic state (chunked parallel loops, dyn-mode planners) get a
// checkable error, never a garbage instance. On success the value is
// bit-identical to the unchecked accessor's.

[[nodiscard]] std::optional<SubtreeInstance> try_subtree_at(
    const CompleteBinaryTree& tree, std::uint64_t K, std::uint64_t idx);

[[nodiscard]] std::optional<LevelRunInstance> try_level_run_at(
    const CompleteBinaryTree& tree, std::uint64_t K, std::uint64_t idx);

[[nodiscard]] std::optional<PathInstance> try_path_at(
    const CompleteBinaryTree& tree, std::uint64_t K, std::uint64_t idx);

[[nodiscard]] std::optional<CompositeInstance> try_tp_at(
    const CompleteBinaryTree& tree, std::uint64_t K, std::uint64_t idx);

/// Total TP_K(i, j) instances over all j = 1..levels: one per anchor node,
/// i.e. tree.size().
[[nodiscard]] std::uint64_t count_tp(const CompleteBinaryTree& tree);

/// |S^T(K)|: number of size-K subtree instances.
[[nodiscard]] std::uint64_t count_subtrees(const CompleteBinaryTree& tree,
                                           std::uint64_t K);

/// |L^T(K)|: number of K-node level runs.
[[nodiscard]] std::uint64_t count_level_runs(const CompleteBinaryTree& tree,
                                             std::uint64_t K);

/// |P^T(K)|: number of K-node ascending paths.
[[nodiscard]] std::uint64_t count_paths(const CompleteBinaryTree& tree,
                                        std::uint64_t K);

}  // namespace pmtree
