// Structural profiles of a mapping, used by the inspector tool and the
// bench harness to explain *where* a mapping's conflicts and load skew
// come from:
//
//   * level_color_histogram — how often each color appears on one level
//     (BASIC-COLOR reuses each level's colors in a strict pattern;
//     baselines scatter);
//   * conflict_profile — worst conflicts of a template family restricted
//     to instances anchored at each level, exposing e.g. COLOR's
//     block-boundary L-template behaviour level by level;
//   * color_report — per-module node counts plus first/last level of use.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/templates/instance.hpp"

namespace pmtree {

/// Occurrences of each color among the nodes of level `j`. O(2^j).
[[nodiscard]] std::vector<std::uint64_t> level_color_histogram(
    const TreeMapping& mapping, std::uint32_t j);

/// Worst conflicts over instances of the family anchored at each level:
/// entry j covers subtrees rooted at / runs inside / paths starting at
/// level j. Entries for levels that host no instance are 0.
struct LevelProfile {
  std::vector<std::uint64_t> worst_by_level;
  std::uint64_t overall = 0;
};

[[nodiscard]] LevelProfile subtree_profile(const TreeMapping& mapping,
                                           std::uint64_t K);
[[nodiscard]] LevelProfile level_run_profile(const TreeMapping& mapping,
                                             std::uint64_t K);
[[nodiscard]] LevelProfile path_profile(const TreeMapping& mapping,
                                        std::uint64_t K);

/// Per-module usage summary.
struct ColorUsage {
  std::uint64_t nodes = 0;          ///< total nodes on this module
  std::uint32_t first_level = 0;    ///< shallowest level using it
  std::uint32_t last_level = 0;     ///< deepest level using it
  bool used = false;
};

[[nodiscard]] std::vector<ColorUsage> color_report(const TreeMapping& mapping);

}  // namespace pmtree
