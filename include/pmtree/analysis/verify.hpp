// Theorem verdicts: each verify_* function checks one of the paper's
// statements against a concrete mapping, exhaustively, and reports a
// machine-checkable verdict with a human-readable detail string. Tests
// assert verdicts; the bench harness prints them next to measured numbers.
#pragma once

#include <cstdint>
#include <string>

#include "pmtree/mapping/mapping.hpp"

namespace pmtree {

struct Verdict {
  bool ok = false;
  std::uint64_t measured = 0;  ///< worst value observed
  std::uint64_t bound = 0;     ///< the theorem's bound
  std::string detail;          ///< witness description when !ok

  explicit operator bool() const noexcept { return ok; }
};

/// Theorems 1/3: the mapping is conflict-free on S(K) and P(N).
[[nodiscard]] Verdict verify_cf_elementary(const TreeMapping& mapping,
                                           std::uint64_t K, std::uint32_t N);

/// Lemma 1: every TP(K, j) instance is rainbow (all colors distinct).
/// Lemma 1 is a per-block statement, so the family is capped: j <= N on
/// single-block trees, and j <= N - k + 1 on taller trees (the deepest
/// anchors whose subtree part still lies inside the root block; deeper
/// subtrees reach into child blocks, whose Gamma colors legitimately
/// revisit root-path colors).
[[nodiscard]] Verdict verify_tp_rainbow(const TreeMapping& mapping,
                                        std::uint64_t K, std::uint32_t N);

/// Theorem 2's lower-bound witness: TP(K, N-k) instances have exactly
/// N + K - k nodes, so any mapping CF on them needs >= N + K - k colors.
/// Verifies instance sizes and rainbowness for the given mapping.
[[nodiscard]] Verdict verify_optimality_witness(const TreeMapping& mapping,
                                                std::uint32_t N, std::uint32_t k);

/// Theorem 4: cost at most 1 on S(M) and P(M), with M = num_modules().
[[nodiscard]] Verdict verify_full_parallelism(const TreeMapping& mapping);

/// Lemma 2: cost at most 1 on L(K).
[[nodiscard]] Verdict verify_level_cost(const TreeMapping& mapping,
                                        std::uint64_t K, std::uint64_t bound);

}  // namespace pmtree
