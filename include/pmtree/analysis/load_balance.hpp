// Memory-load balance of a mapping (Section 6: LABEL-TREE "equally
// distributes data items among the memory modules ... the ratio between
// the maximum and minimum number of data items mapped onto the same module
// is 1 + o(1)").
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/mapping/mapping.hpp"

namespace pmtree {

struct LoadBalanceReport {
  std::vector<std::uint64_t> per_module;  ///< nodes stored on each module
  std::uint64_t min_load = 0;
  std::uint64_t max_load = 0;
  std::uint32_t used_modules = 0;         ///< modules with at least one node

  /// max/min over modules that hold at least one node; 0 if degenerate.
  [[nodiscard]] double ratio() const noexcept {
    return min_load == 0 ? 0.0
                         : static_cast<double>(max_load) /
                               static_cast<double>(min_load);
  }
};

/// Walks the whole tree and histograms node counts per module. O(2^H).
[[nodiscard]] LoadBalanceReport load_balance(const TreeMapping& mapping);

}  // namespace pmtree
