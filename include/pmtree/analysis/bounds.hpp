// Closed-form theorem bounds from the paper, so tests and benches can put
// "measured" and "bound" side by side. Each function documents which
// theorem/lemma it transcribes; preconditions mirror the statements.
#pragma once

#include <cstdint>

#include "pmtree/util/bits.hpp"

namespace pmtree::bounds {

/// Theorems 1-3: modules needed for CF access to S(K) and P(N):
/// N + K - k with K = 2^k - 1. This is both what COLOR uses and the
/// optimum (Theorem 2).
[[nodiscard]] constexpr std::uint32_t cf_modules(std::uint32_t N,
                                                 std::uint32_t k) noexcept {
  return N + static_cast<std::uint32_t>(tree_size(k)) - k;
}

/// Theorem 3 corollary (Section 4): CF access to S(M) and P(M) needs
/// 2M - ceil(log2 M) modules.
[[nodiscard]] constexpr std::uint64_t cf_modules_full(std::uint64_t M) noexcept {
  return 2 * M - ceil_log2(M);
}

/// Theorem 4: with M = 2^m - 1 modules, COLOR's cost on S(M) and P(M) is
/// at most 1.
inline constexpr std::uint64_t kOptimalFullParallelismCost = 1;

/// Trivial lower bound (Section 2): any mapping of a size-K instance onto
/// M modules costs at least ceil(K/M) - 1.
[[nodiscard]] constexpr std::uint64_t trivial_lower(std::uint64_t K,
                                                    std::uint64_t M) noexcept {
  return ceil_div(K, M) - 1;
}

/// Lemma 3: Cost(COLOR, P(D), M) <= 2*ceil(D/M) - 1 for D >= M.
[[nodiscard]] constexpr std::uint64_t color_path_bound(std::uint64_t D,
                                                       std::uint64_t M) noexcept {
  return 2 * ceil_div(D, M) - 1;
}

/// Lemma 4: Cost(COLOR, L(D), M) <= 4*ceil(D/M) for D >= M.
[[nodiscard]] constexpr std::uint64_t color_level_bound(std::uint64_t D,
                                                        std::uint64_t M) noexcept {
  return 4 * ceil_div(D, M);
}

/// Lemma 5: Cost(COLOR, S(D), M) <= 4*ceil(D/M) - 1 for D = 2^d - 1 >= M.
[[nodiscard]] constexpr std::uint64_t color_subtree_bound(std::uint64_t D,
                                                          std::uint64_t M) noexcept {
  return 4 * ceil_div(D, M) - 1;
}

/// Theorem 6: Cost(COLOR, C(D, c), M) <= 4*D/M + c.
[[nodiscard]] constexpr std::uint64_t color_composite_bound(std::uint64_t D,
                                                            std::uint64_t M,
                                                            std::uint64_t c) noexcept {
  return 4 * ceil_div(D, M) + c;
}

/// Theorem 7 / Lemma 7 reference scale for LABEL-TREE: sqrt(M / log M)
/// (conflicts on elementary templates of size M are O of this).
[[nodiscard]] double label_tree_m_scale(std::uint64_t M);

/// Lemma 7 / Theorem 8 reference scale: D / sqrt(M log M) (+ c for
/// composites); the asymptotic envelope the measured curves must track.
[[nodiscard]] double label_tree_d_scale(std::uint64_t D, std::uint64_t M);

}  // namespace pmtree::bounds
