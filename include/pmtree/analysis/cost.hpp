// Conflict-cost evaluation (Section 2 of the paper).
//
// For a mapping U and a template instance I, the cost is
//
//     C_U(T, I, M) = max_color |{ u in I : color(u) = color }| - 1,
//
// i.e. the number of *extra* accesses the busiest module receives; a
// conflict-free access has cost 0 and an instance of size D needs exactly
// cost+1 serialized memory rounds. The cost of a template *family* is the
// maximum over its instances; evaluate_* computes it exhaustively (used by
// the theorem tests on moderate trees) and sample_* estimates it by random
// sampling (used by benches on big trees).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/templates/instance.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

/// Conflicts of a single access set: (max color multiplicity) - 1.
/// Empty sets cost 0.
[[nodiscard]] std::uint64_t conflicts(const TreeMapping& mapping,
                                      std::span<const Node> nodes);

/// Serialized memory rounds to serve the access: conflicts + 1 (0 if empty).
[[nodiscard]] std::uint64_t rounds(const TreeMapping& mapping,
                                   std::span<const Node> nodes);

/// Summary of a family evaluation.
struct FamilyCost {
  std::uint64_t max_conflicts = 0;   ///< Cost(U, family, M)
  double mean_conflicts = 0.0;
  std::uint64_t instances = 0;       ///< instances evaluated
  /// One instance achieving max_conflicts (first found), as its node set.
  std::vector<Node> witness;
};

/// Exhaustive Cost(U, S(K), M) over every size-K subtree of U's tree.
[[nodiscard]] FamilyCost evaluate_subtrees(const TreeMapping& mapping,
                                           std::uint64_t K);

/// Exhaustive Cost(U, L(K), M).
[[nodiscard]] FamilyCost evaluate_level_runs(const TreeMapping& mapping,
                                             std::uint64_t K);

/// Exhaustive Cost(U, P(K), M).
[[nodiscard]] FamilyCost evaluate_paths(const TreeMapping& mapping,
                                        std::uint64_t K);

/// Exhaustive cost over the TP(K, j) family of Lemma 1 for every j.
[[nodiscard]] FamilyCost evaluate_tp(const TreeMapping& mapping, std::uint64_t K);

/// Sampled cost estimates (max over `samples` random instances).
[[nodiscard]] FamilyCost sample_subtrees(const TreeMapping& mapping,
                                         std::uint64_t K, std::uint64_t samples,
                                         Rng& rng);
[[nodiscard]] FamilyCost sample_level_runs(const TreeMapping& mapping,
                                           std::uint64_t K, std::uint64_t samples,
                                           Rng& rng);
[[nodiscard]] FamilyCost sample_paths(const TreeMapping& mapping, std::uint64_t K,
                                      std::uint64_t samples, Rng& rng);

/// Sampled cost over composite templates C(D, c).
[[nodiscard]] FamilyCost sample_composites(const TreeMapping& mapping,
                                           std::uint64_t D, std::uint64_t c,
                                           std::uint64_t samples, Rng& rng);

}  // namespace pmtree
