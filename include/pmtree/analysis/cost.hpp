// Conflict-cost evaluation (Section 2 of the paper).
//
// For a mapping U and a template instance I, the cost is
//
//     C_U(T, I, M) = max_color |{ u in I : color(u) = color }| - 1,
//
// i.e. the number of *extra* accesses the busiest module receives; a
// conflict-free access has cost 0 and an instance of size D needs exactly
// cost+1 serialized memory rounds. The cost of a template *family* is the
// maximum over its instances; evaluate_* computes it exhaustively (used by
// the theorem tests on moderate trees) and sample_* estimates it by random
// sampling (used by benches on big trees).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/templates/instance.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

/// Conflicts of a single access set: (max color multiplicity) - 1.
/// Empty sets cost 0. Allocation-free: colors go through the mapping's
/// batch kernel into thread-local scratch.
[[nodiscard]] std::uint64_t conflicts(const TreeMapping& mapping,
                                      std::span<const Node> nodes);

/// Serialized memory rounds to serve the access: conflicts + 1 (0 if empty).
[[nodiscard]] std::uint64_t rounds(const TreeMapping& mapping,
                                   std::span<const Node> nodes);

/// Batch form of conflicts() over a CSR-packed sequence of accesses:
/// access i is the slice nodes[offsets[i] .. offsets[i+1]), and out[i]
/// receives its conflict count. All colors are resolved in one
/// color_of_batch call, so per-access cost is O(access size), independent
/// of the module count and of the mapping's retrieval cost. Preconditions:
/// offsets is non-empty and non-decreasing, offsets.front() == 0,
/// offsets.back() <= nodes.size(), out.size() >= offsets.size() - 1.
void conflicts_batch(const TreeMapping& mapping, std::span<const Node> nodes,
                     std::span<const std::uint64_t> offsets,
                     std::span<std::uint64_t> out);

/// Controls for the evaluate_*/sample_* loops below.
struct EvalOptions {
  /// Worker threads: 0 = one per hardware thread. Results — including the
  /// witness — are bit-identical for every value (see DESIGN.md §7).
  unsigned threads = 0;
  /// Families with fewer instances than this stay on the calling thread
  /// (thread spawn costs more than the scan).
  std::uint64_t sequential_cutoff = 4096;
};

/// Summary of a family evaluation.
struct FamilyCost {
  std::uint64_t max_conflicts = 0;   ///< Cost(U, family, M)
  double mean_conflicts = 0.0;
  std::uint64_t instances = 0;       ///< instances evaluated
  /// One instance achieving max_conflicts (first found), as its node set.
  std::vector<Node> witness;
};

/// Exhaustive Cost(U, S(K), M) over every size-K subtree of U's tree.
[[nodiscard]] FamilyCost evaluate_subtrees(const TreeMapping& mapping,
                                           std::uint64_t K,
                                           const EvalOptions& opts = {});

/// Exhaustive Cost(U, L(K), M).
[[nodiscard]] FamilyCost evaluate_level_runs(const TreeMapping& mapping,
                                             std::uint64_t K,
                                             const EvalOptions& opts = {});

/// Exhaustive Cost(U, P(K), M).
[[nodiscard]] FamilyCost evaluate_paths(const TreeMapping& mapping,
                                        std::uint64_t K,
                                        const EvalOptions& opts = {});

/// Exhaustive cost over the TP(K, j) family of Lemma 1 for every j.
[[nodiscard]] FamilyCost evaluate_tp(const TreeMapping& mapping, std::uint64_t K,
                                     const EvalOptions& opts = {});

/// Sampled cost estimates (max over `samples` random instances). Instances
/// are drawn sequentially from `rng` (the stream is identical to a fully
/// sequential run), then evaluated with the same parallel reduction as
/// evaluate_*.
[[nodiscard]] FamilyCost sample_subtrees(const TreeMapping& mapping,
                                         std::uint64_t K, std::uint64_t samples,
                                         Rng& rng, const EvalOptions& opts = {});
[[nodiscard]] FamilyCost sample_level_runs(const TreeMapping& mapping,
                                           std::uint64_t K, std::uint64_t samples,
                                           Rng& rng, const EvalOptions& opts = {});
[[nodiscard]] FamilyCost sample_paths(const TreeMapping& mapping, std::uint64_t K,
                                      std::uint64_t samples, Rng& rng,
                                      const EvalOptions& opts = {});

/// Sampled cost over composite templates C(D, c).
[[nodiscard]] FamilyCost sample_composites(const TreeMapping& mapping,
                                           std::uint64_t D, std::uint64_t c,
                                           std::uint64_t samples, Rng& rng,
                                           const EvalOptions& opts = {});

}  // namespace pmtree
