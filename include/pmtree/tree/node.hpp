// Node coordinates of a complete binary tree, following the paper's
// notation (Section 2.1):
//
//   * the root is at level 0;
//   * LEV_T(j) lists the 2^j nodes of level j left-to-right, indexed from 0;
//   * v_T(i, j) is node i of level j;
//   * ANC_T(i, j, k) = v(floor(i / 2^k), j - k) is the k-th ancestor.
//
// A Node is the pair (level, index). The equivalent linearization is the
// BFS id: bfs_id(v(i,j)) = 2^j - 1 + i, which enumerates the tree level by
// level starting from 0 at the root. All arithmetic is closed-form; there
// is no pointer structure anywhere in pmtree.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

#include "pmtree/util/bits.hpp"

namespace pmtree {

struct Node {
  std::uint32_t level = 0;   ///< distance from the root (root: 0)
  std::uint64_t index = 0;   ///< left-to-right position within the level

  friend constexpr bool operator==(const Node&, const Node&) = default;
  friend constexpr auto operator<=>(const Node&, const Node&) = default;
};

/// v_T(i, j) — the paper's constructor notation, argument order (i, j).
[[nodiscard]] constexpr Node v(std::uint64_t i, std::uint32_t j) noexcept {
  assert(i < pow2(j));
  return Node{j, i};
}

/// Level-by-level (BFS) id of a node; the root has id 0.
[[nodiscard]] constexpr std::uint64_t bfs_id(Node n) noexcept {
  return pow2(n.level) - 1 + n.index;
}

/// Inverse of bfs_id.
[[nodiscard]] constexpr Node node_at(std::uint64_t id) noexcept {
  const std::uint32_t level = floor_log2(id + 1);
  return Node{level, id - (pow2(level) - 1)};
}

/// ANC_T(i, j, k): the k-th ancestor of v(i, j). Precondition: k <= level.
[[nodiscard]] constexpr Node ancestor(Node n, std::uint32_t k) noexcept {
  assert(k <= n.level);
  return Node{n.level - k, n.index >> k};
}

/// The parent of a non-root node.
[[nodiscard]] constexpr Node parent(Node n) noexcept { return ancestor(n, 1); }

/// Left child of a node.
[[nodiscard]] constexpr Node left_child(Node n) noexcept {
  return Node{n.level + 1, 2 * n.index};
}

/// Right child of a node.
[[nodiscard]] constexpr Node right_child(Node n) noexcept {
  return Node{n.level + 1, 2 * n.index + 1};
}

/// The sibling of a non-root node (index XOR 1). This realizes the paper's
/// "h + (-1)^{h mod 2}" sibling formula.
[[nodiscard]] constexpr Node sibling(Node n) noexcept {
  assert(n.level > 0);
  return Node{n.level, n.index ^ 1};
}

/// True iff `a` is an ancestor of `d` (strictly above it on the root path).
[[nodiscard]] constexpr bool is_ancestor(Node a, Node d) noexcept {
  return a.level < d.level && (d.index >> (d.level - a.level)) == a.index;
}

/// True iff `n` lies inside the complete subtree of `levels` levels rooted
/// at `root` (n may be root itself).
[[nodiscard]] constexpr bool in_subtree(Node n, Node root,
                                        std::uint32_t levels) noexcept {
  if (n.level < root.level || n.level >= root.level + levels) return false;
  return (n.index >> (n.level - root.level)) == root.index;
}

/// Node described as "v(i, j)" for diagnostics.
[[nodiscard]] inline std::string to_string(Node n) {
  return "v(" + std::to_string(n.index) + ", " + std::to_string(n.level) + ")";
}

}  // namespace pmtree
