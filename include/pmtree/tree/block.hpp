// Block arithmetic (Section 3.1 of the paper).
//
// For a chosen subtree-template parameter k (template size K = 2^k - 1),
// each level j >= k of a tree is partitioned into 2^{j-k+1} blocks of
// 2^{k-1} consecutive nodes:
//
//     block(h, j) = { v(i, j) : h*2^{k-1} <= i < (h+1)*2^{k-1} }.
//
// block(h, j) is exactly the set of leaves of the size-K subtree rooted at
// v(h, j-k+1); the (k-1)-st ancestor of its nodes is that root. These
// relations drive both BASIC-COLOR and MICRO-LABEL.
#pragma once

#include <cassert>
#include <cstdint>

#include "pmtree/tree/node.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

/// Geometry of the level-j block partition for subtree parameter k >= 1.
struct BlockScheme {
  std::uint32_t k;  ///< subtree parameter; block size is 2^{k-1}

  [[nodiscard]] constexpr std::uint64_t block_size() const noexcept {
    return pow2(k - 1);
  }

  /// Number of blocks at level j (levels j >= k are partitioned).
  [[nodiscard]] constexpr std::uint64_t blocks_at_level(std::uint32_t j) const noexcept {
    assert(j + 1 >= k);
    return pow2(j - k + 1);
  }

  /// The block number h that contains node v(i, j).
  [[nodiscard]] constexpr std::uint64_t block_of(Node n) const noexcept {
    return n.index >> (k - 1);
  }

  /// Position of node v(i, j) inside its block: 0 .. 2^{k-1}-1.
  [[nodiscard]] constexpr std::uint64_t position_in_block(Node n) const noexcept {
    return n.index & (pow2(k - 1) - 1);
  }

  /// True iff the node is the last node of its block (the one BASIC-COLOR
  /// assigns a fresh Gamma color to).
  [[nodiscard]] constexpr bool is_block_last(Node n) const noexcept {
    return position_in_block(n) == block_size() - 1;
  }

  /// The t-th node of block(h, j).
  [[nodiscard]] constexpr Node block_node(std::uint64_t h, std::uint32_t j,
                                          std::uint64_t t) const noexcept {
    assert(t < block_size());
    return Node{j, h * block_size() + t};
  }

  /// Root of the size-K subtree whose leaves form block(h, j):
  /// v(h, j-k+1) — the (k-1)-st ancestor of the block's nodes.
  [[nodiscard]] constexpr Node block_root(std::uint64_t h, std::uint32_t j) const noexcept {
    assert(j + 1 >= k);
    return Node{j - k + 1, h};
  }
};

/// Position of a node within a subtree in level order (BFS): the root of
/// the subtree has position 0. Precondition: n lies in the subtree.
[[nodiscard]] constexpr std::uint64_t bfs_position_in_subtree(Node n,
                                                              Node root) noexcept {
  assert(n.level >= root.level);
  const std::uint32_t depth = n.level - root.level;
  const std::uint64_t offset = n.index - (root.index << depth);
  assert(offset < pow2(depth));
  return pow2(depth) - 1 + offset;
}

/// Inverse: the node at BFS position `pos` of the subtree rooted at `root`.
[[nodiscard]] constexpr Node subtree_node_at(Node root, std::uint64_t pos) noexcept {
  const std::uint32_t depth = floor_log2(pos + 1);
  const std::uint64_t offset = pos + 1 - pow2(depth);
  return Node{root.level + depth, (root.index << depth) + offset};
}

}  // namespace pmtree
