// CompleteBinaryTree: the value-type description of the tree under study.
//
// The tree is never materialized; it is a shape (number of levels) against
// which nodes, templates and mappings are validated. Following the paper we
// write `levels` for the number of levels (root level 0 .. levels-1), so a
// tree with L levels has 2^L - 1 nodes and its leaf-to-root paths are
// P-template instances of size L.
#pragma once

#include <cassert>
#include <cstdint>

#include "pmtree/tree/node.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

class CompleteBinaryTree {
 public:
  /// A tree with `levels` levels (1 <= levels <= 60).
  constexpr explicit CompleteBinaryTree(std::uint32_t levels) noexcept
      : levels_(levels) {
    assert(levels >= 1 && levels <= 60);
  }

  [[nodiscard]] constexpr std::uint32_t levels() const noexcept { return levels_; }

  /// Height in the edge-count sense: levels - 1.
  [[nodiscard]] constexpr std::uint32_t height() const noexcept {
    return levels_ - 1;
  }

  /// Total number of nodes: 2^levels - 1.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return tree_size(levels_);
  }

  /// Number of nodes at level j.
  [[nodiscard]] constexpr std::uint64_t level_width(std::uint32_t j) const noexcept {
    assert(j < levels_);
    return pow2(j);
  }

  [[nodiscard]] constexpr bool contains(Node n) const noexcept {
    return n.level < levels_ && n.index < pow2(n.level);
  }

  [[nodiscard]] constexpr Node root() const noexcept { return Node{0, 0}; }

  /// First leaf (leftmost node of the last level).
  [[nodiscard]] constexpr Node first_leaf() const noexcept {
    return Node{levels_ - 1, 0};
  }

  [[nodiscard]] constexpr std::uint64_t num_leaves() const noexcept {
    return pow2(levels_ - 1);
  }

  [[nodiscard]] constexpr bool is_leaf(Node n) const noexcept {
    return n.level == levels_ - 1;
  }

  friend constexpr bool operator==(const CompleteBinaryTree&,
                                   const CompleteBinaryTree&) = default;

 private:
  std::uint32_t levels_;
};

}  // namespace pmtree
