// IncrementalColorer: COLOR and LABEL-TREE extended lazily as the tree
// grows (DESIGN.md §16).
//
// Both of the paper's mappings are pure functions of the node coordinate:
// a node's color never depends on how tall the tree currently is, only on
// where the node sits. That makes incremental re-coloring exact rather
// than approximate — coloring new nodes on first touch must produce the
// very same colors a from-scratch rebuild would, bit for bit, and the
// differential suites assert exactly that after every mutation batch.
//
// What "incremental" buys is the *work bound*. COLOR's recurrence (§3,
// BOTTOM) gives every node below the top k levels its color from exactly
// one strictly-shallower node (a sibling-subtree source or a Gamma
// ancestor of the parent block generation) or from a closed form. The
// colorer memoizes that recurrence: touching a node colors its whole
// dependency chain once, and every colored node is computed exactly once
// ever — amortized O(1) per colored node across a run, against O(H) per
// node for the lazy chase or O(2^H) for a full rebuild per mutation
// epoch. LABEL-TREE's window formula is already O(1) per node; the
// colorer evaluates it on first touch and stores the result in the same
// per-level stores.
//
// Concurrency contract (the serve integration): touch() is control-plane
// only — the server calls it at the batch-cut barrier, before the batch
// is handed to workers. color_of / color_of_batch are worker-safe: each
// level's color store is published once through an acquire/release
// pointer, and a worker only reads entries of nodes its batch carried,
// which were touched before the cut (the TokenRing release-push / thread
// fork is the happens-before edge). Reads of never-touched coordinates
// fall back to an allocation-free cold evaluation of the same recurrence,
// so the mapping stays total and deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree::dyn {

class IncrementalColorer final : public TreeMapping {
 public:
  enum class Scheme : std::uint8_t { kColor, kLabelTree };

  /// COLOR(envelope, N, K = 2^k - 1) extended lazily. Same preconditions
  /// as ColorMapping: 1 <= k <= N <= 60, and N > k when the envelope has
  /// more than N levels. envelope.levels() <= 26 (per-level stores).
  [[nodiscard]] static IncrementalColorer color(CompleteBinaryTree envelope,
                                                std::uint32_t N,
                                                std::uint32_t k);

  /// LABEL-TREE(envelope, M) extended lazily. Precondition: M >= 3.
  [[nodiscard]] static IncrementalColorer label_tree(
      CompleteBinaryTree envelope, std::uint32_t M);

  IncrementalColorer(IncrementalColorer&&) noexcept = default;

  /// Control-plane only: colors every node in `nodes` (and, for COLOR,
  /// each one's not-yet-colored dependency chain) if not colored yet, and
  /// grows tree() to the deepest touched level. Not thread-safe; must not
  /// run concurrently with worker-side color reads of the nodes being
  /// touched (the serve barrier provides this ordering).
  void touch(std::span<const Node> nodes);
  void touch(Node n);

  /// Worker-safe reads; see the concurrency contract above.
  [[nodiscard]] Color color_of(Node n) const override;
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override;

  [[nodiscard]] std::uint32_t num_modules() const noexcept override;
  [[nodiscard]] std::string name() const override;

  /// Drops every memoized color and shrinks tree() back to the root —
  /// the full-recolor-per-epoch baseline re-touches the live set after
  /// every batch through this. Control-plane only.
  void reset();

  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] const CompleteBinaryTree& envelope() const noexcept {
    return envelope_;
  }
  /// Nodes colored (memoized) since construction / the last reset().
  [[nodiscard]] std::uint64_t nodes_colored() const noexcept;
  /// touch()ed nodes, counting repeats — nodes_colored() / touches()
  /// exposes the amortization the differential bench reports.
  [[nodiscard]] std::uint64_t touches() const noexcept;

 private:
  IncrementalColorer(CompleteBinaryTree envelope, Scheme scheme,
                     std::uint32_t N, std::uint32_t k, std::uint32_t M);

  /// Colors n (memoizing the whole dependency chain) and returns it.
  Color ensure(Node n);
  /// Allocation-free evaluation of the recurrence, for cold reads.
  [[nodiscard]] Color compute_cold(Node n) const;
  /// The level's store, allocated and published on first control-plane
  /// touch of the level.
  [[nodiscard]] Color* writable_level(std::uint32_t j);

  static constexpr Color kUncolored = 0xFFFFFFFFu;

  /// Shared mutable state, behind one indirection so the colorer stays
  /// movable despite the atomics.
  struct State {
    /// Per-level color stores; entries are kUncolored until memoized.
    /// Owned here, published below.
    std::vector<std::unique_ptr<Color[]>> owned;
    /// Acquire/release publication points for worker reads.
    std::vector<std::atomic<Color*>> published;
    /// Control-plane bitmap: which entries are memoized.
    std::vector<std::vector<std::uint64_t>> colored;
    std::uint64_t nodes_colored = 0;
    std::uint64_t touches = 0;
  };

  CompleteBinaryTree envelope_;
  Scheme scheme_;
  std::uint32_t n_ = 0;        ///< COLOR: N
  std::uint32_t k_ = 0;        ///< COLOR: k
  std::uint32_t modules_ = 0;  ///< N + K - k, or M
  std::uint32_t touched_levels_ = 1;  ///< deepest touched level + 1
  /// LABEL-TREE's closed form, evaluated per touched node (the micro
  /// table it builds is tree_size(ceil(log2 M)) entries — tiny).
  std::unique_ptr<LabelTreeMapping> label_;
  std::unique_ptr<State> state_;
};

}  // namespace pmtree::dyn
