// DynamicTree: a mutable tree living inside a complete-binary-tree
// envelope (DESIGN.md §16).
//
// The rest of pmtree studies a *static* complete tree: mappings color its
// coordinates once, templates enumerate its node sets, the engine replays
// accesses against a fixed shape. DynamicTree opens the read-write
// scenario space without breaking any of that machinery, by keeping the
// paper's coordinate system as the source of truth:
//
//   * node identity IS the (level, index) coordinate — stable for the
//     node's whole lifetime, so templates, CSR layouts and colorings
//     built against coordinates keep working as the tree mutates;
//   * the live set is a per-level bitmap over the envelope (a
//     CompleteBinaryTree of max_levels), maintained under the single
//     structural invariant "every live non-root node has a live parent"
//     — the live set is always a connected top subtree of the envelope;
//   * payloads get *slots* from a bitmap/free-list allocator (the
//     bp-forest idiom: freed slots recycle LIFO before the watermark
//     grows), so applications can keep keys in dense arrays that survive
//     arbitrary insert/erase churn without per-node heap nodes.
//
// Every mutation validates its preconditions and returns a DynStatus
// instead of silently accepting an out-of-range parent or an occupied
// coordinate — the serve layer records these verdicts per mutation and
// the PALM batch barrier relies on them to resolve write-write conflicts
// deterministically.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree::dyn {

/// Verdict of one DynamicTree mutation. kOk is the only success value;
/// everything else names the violated invariant.
enum class DynStatus : std::uint8_t {
  kOk,             ///< mutation applied
  kNotInEnvelope,  ///< coordinate outside the max_levels envelope
  kParentMissing,  ///< insert target's parent is not live
  kOccupied,       ///< insert target is already live
  kNotLive,        ///< erase/grow target is not live
  kHasChildren,    ///< remove_leaf target still has a live child
  kIsRoot,         ///< the root cannot be removed
  kHeightLimit,    ///< growth would exceed the envelope height
  kDuplicate,      ///< deduped: an identical mutation precedes it in batch
};

[[nodiscard]] constexpr const char* to_string(DynStatus s) noexcept {
  switch (s) {
    case DynStatus::kOk: return "ok";
    case DynStatus::kNotInEnvelope: return "not-in-envelope";
    case DynStatus::kParentMissing: return "parent-missing";
    case DynStatus::kOccupied: return "occupied";
    case DynStatus::kNotLive: return "not-live";
    case DynStatus::kHasChildren: return "has-children";
    case DynStatus::kIsRoot: return "is-root";
    case DynStatus::kHeightLimit: return "height-limit";
    case DynStatus::kDuplicate: return "duplicate";
  }
  return "?";
}

class DynamicTree {
 public:
  /// An initially root-only tree inside a max_levels envelope
  /// (1 <= max_levels <= 26; deeper envelopes would make the per-level
  /// color stores of the incremental colorer unreasonably large).
  explicit DynamicTree(std::uint32_t max_levels);

  [[nodiscard]] const CompleteBinaryTree& envelope() const noexcept {
    return envelope_;
  }
  [[nodiscard]] std::uint32_t max_levels() const noexcept {
    return envelope_.levels();
  }
  /// Levels of the current live set: deepest live level + 1.
  [[nodiscard]] std::uint32_t levels() const noexcept { return deepest_ + 1; }
  /// Number of live nodes (the root is always live).
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  /// Bumped by every successful mutation — cheap change detection for
  /// layers that cache shape-derived state.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] bool is_live(Node n) const noexcept {
    if (!envelope_.contains(n)) return false;
    const std::vector<std::uint64_t>& words = live_[n.level];
    if (words.empty()) return false;
    return (words[n.index >> 6] >> (n.index & 63)) & 1;
  }

  /// True iff the coordinate is live and has no live child.
  [[nodiscard]] bool is_leaf(Node n) const noexcept {
    if (!is_live(n)) return false;
    if (n.level + 1 >= envelope_.levels()) return true;
    return !is_live(left_child(n)) && !is_live(right_child(n));
  }

  /// The stable payload slot of a live node. Slots are dense-ish small
  /// integers (bounded by the high-water mark of concurrently live
  /// nodes), recycled LIFO on removal. Precondition: is_live(n).
  [[nodiscard]] std::uint64_t slot_of(Node n) const noexcept {
    assert(is_live(n));
    return slot_[n.level][n.index];
  }

  /// Smallest array size that indexes every slot ever handed out and not
  /// yet recycled — the capacity apps size their payload arrays to.
  [[nodiscard]] std::uint64_t slot_watermark() const noexcept {
    return slot_watermark_;
  }

  // ---- Mutations --------------------------------------------------------

  /// Makes `target` live. Fails with kNotInEnvelope / kOccupied /
  /// kParentMissing (the parent coordinate must already be live).
  DynStatus insert_node(Node target);

  struct Alloc {
    DynStatus status = DynStatus::kOk;
    Node node;  ///< the allocated coordinate (valid iff status == kOk)
  };

  /// Allocates the first free child slot under `parent` (left, then
  /// right). Fails with kParentMissing (parent not live), kHeightLimit
  /// (parent on the envelope's last level), or kOccupied (both children
  /// live).
  Alloc append_leaf(Node parent);

  /// Removes a live, childless, non-root node and recycles its slot.
  DynStatus remove_leaf(Node leaf);

  struct SubtreeOp {
    DynStatus status = DynStatus::kOk;
    std::uint64_t nodes = 0;  ///< nodes inserted / removed
  };

  /// Split: materializes the complete `levels`-level subtree under a live
  /// `root` (top-down, so parents always precede children). Fails with
  /// kNotLive or kHeightLimit; already-live descendants are kept.
  SubtreeOp grow_subtree(Node root, std::uint32_t levels);

  /// Merge: removes every live strict descendant of a live `root`
  /// (bottom-up), collapsing the subtree back to its root.
  SubtreeOp prune_subtree(Node root);

  // ---- Traversal / verification -----------------------------------------

  /// Visits every live node, level by level, left to right.
  template <typename Visitor>
  void for_each_live(Visitor&& visit) const {
    for (std::uint32_t j = 0; j <= deepest_; ++j) {
      const std::vector<std::uint64_t>& words = live_[j];
      for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        while (bits != 0) {
          const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
          visit(Node{j, (static_cast<std::uint64_t>(w) << 6) + b});
          bits &= bits - 1;
        }
      }
    }
  }

  /// All live nodes, level by level — the node set a from-scratch rebuild
  /// or a full recoloring sweep walks.
  [[nodiscard]] std::vector<Node> live_nodes() const;

  /// Full invariant check (test hook): the root is live, every live
  /// non-root node has a live parent, per-level counts match the bitmaps,
  /// deepest_ is exact, and no two live nodes share a slot.
  [[nodiscard]] bool validate() const;

 private:
  /// Ensures level j's bitmap / slot array exist (allocated on first
  /// touch, so a shallow tree in a deep envelope stays cheap).
  void ensure_level(std::uint32_t j);
  void set_live(Node n);
  void clear_live(Node n);

  CompleteBinaryTree envelope_;
  std::vector<std::vector<std::uint64_t>> live_;  ///< per-level bitmaps
  std::vector<std::vector<std::uint64_t>> slot_;  ///< per-level slot ids
  std::vector<std::uint64_t> level_count_;        ///< live nodes per level
  std::vector<std::uint64_t> free_slots_;         ///< recycled slots, LIFO
  std::uint64_t slot_watermark_ = 0;
  std::uint64_t size_ = 0;
  std::uint32_t deepest_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace pmtree::dyn
