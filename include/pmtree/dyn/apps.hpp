// Read-write application clients over pmtree::dyn (DESIGN.md §16).
//
// The read-only apps (Dictionary, ParallelHeap) bind keys to a frozen
// complete tree and let serve clients replay their access paths. These
// are their dynamic analogues: the key store lives in slot-indexed
// arrays over a DynamicTree, operations are *planned* speculatively
// against the live shape plus a local shadow overlay of this client's
// still-unapplied writes, and every structural change rides the serve
// path as a write request (RequestKind::kInsert / kErase) applied at the
// PALM batch barrier.
//
// The protocol mirrors serve::DictionaryClient: submit_*() packages an
// operation as a Request (remembering it by seq) and reconcile() matches
// a finished ServeReport — responses plus the mutation log — back to the
// remembered operations. Reconcile replays this client's applied
// mutations in log (canonical barrier) order against the authoritative
// local key arrays, so the final key state is a pure function of the
// deterministic log: bit-identical at any worker count and under the
// staged pipeline.
//
// Speculation and conflicts: a client plans against live state + its own
// overlay, so its own back-to-back writes compose (a second insert can
// descend through the first). Writes from *other* clients are invisible
// until the barrier; when speculation loses (another writer claimed the
// coordinate first), the barrier records the rejection verdict and
// reconcile() reports the operation as not applied — the client retries
// with fresh state, exactly like an optimistic-concurrency loser.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/serve/server.hpp"

namespace pmtree::dyn {

/// An unbalanced binary search tree over a DynamicTree: searches submit
/// their root-down comparison path as a read request, inserts submit the
/// path plus the speculative attachment coordinate as a kInsert request.
/// Keys live in a slot-indexed array (the allocator's stable slots), so
/// arbitrary churn never moves a stored key.
class DynamicDictionary {
 public:
  using Key = std::int64_t;

  /// Binds to `tree` (which must outlive the client) as client stream
  /// `client_id`. `root_key` seeds the always-live root — a dynamic
  /// dictionary is never empty, which keeps "first insert" and
  /// "structural insert" the same operation.
  DynamicDictionary(DynamicTree& tree, std::uint32_t client_id, Key root_key);

  /// Plans + submits the search for `key`; returns the request's seq.
  std::uint64_t submit_search(serve::Server& server, Key key,
                              std::uint64_t submit_cycle,
                              std::uint64_t deadline_cycles = 0);

  /// Plans + submits the insert of `key` at the speculative attachment
  /// point (first coordinate off the search path not live and not in
  /// this client's overlay); returns the request's seq. Duplicate keys
  /// (already present on the path) re-submit the search path read-only
  /// and report applied = false at reconcile.
  std::uint64_t submit_insert(serve::Server& server, Key key,
                              std::uint64_t submit_cycle,
                              std::uint64_t deadline_cycles = 0);

  struct Outcome {
    std::uint64_t seq = 0;
    Key key = 0;
    bool is_insert = false;
    serve::Response response;  ///< timing + terminal status
    /// Insert: the barrier applied the mutation (kOk verdict). Searches
    /// and duplicate-key inserts report false.
    bool applied = false;
    /// Membership in the final (post-run) key state.
    bool found = false;
  };

  /// Joins `report` back to this client's operations, in seq order:
  /// replays this client's applied mutations from the log into the key
  /// store, drops the speculation overlay, and re-derives each answer
  /// against the final state.
  std::vector<Outcome> reconcile(const serve::ServeReport& report);

  /// Membership against the current reconciled key state.
  [[nodiscard]] bool contains(Key key) const;
  /// Reconciled key count (root included).
  [[nodiscard]] std::uint64_t size() const noexcept { return key_count_; }
  [[nodiscard]] std::uint32_t id() const noexcept { return client_; }

 private:
  struct Walk {
    std::vector<Node> path;  ///< visited coordinates, root first
    bool found = false;      ///< key present on the path
    Node attach;             ///< first free coordinate (valid iff !found
                             ///< and the envelope wasn't exhausted)
    bool attachable = false;
  };
  struct Op {
    Key key = 0;
    bool insert = false;
  };

  [[nodiscard]] Walk walk(Key key) const;
  [[nodiscard]] Key key_at(Node n, bool* in_overlay) const;
  void store_key(Node n, Key key);

  DynamicTree* tree_;
  std::uint32_t client_;
  std::vector<Key> keys_;       ///< slot-indexed, authoritative
  std::vector<char> has_key_;   ///< slot-indexed validity
  std::uint64_t key_count_ = 1;
  std::vector<Op> ops_;         ///< indexed by seq
  std::uint64_t reconciled_ = 0;  ///< ops below this seq are final
  /// This client's pending speculative inserts: (coordinate, key).
  std::vector<std::pair<Node, Key>> overlay_;
};

/// A BFS-compact binary min-heap: element i lives at coordinate
/// node_at(i), so the live set is always the first size() BFS positions
/// — pushes append the next BFS coordinate (kInsert), pops erase the
/// last one (kErase). Keys are kept locally and replayed from the
/// mutation log; sift paths are what the requests fetch.
class DynamicHeap {
 public:
  using Key = std::int64_t;

  /// Binds to `tree` (root-only at bind time is the intended state) as
  /// client stream `client_id`; `root_key` seeds the always-live root.
  DynamicHeap(DynamicTree& tree, std::uint32_t client_id, Key root_key);

  /// Plans + submits push(key): the request fetches the speculative
  /// sift-up path and inserts the next BFS coordinate.
  std::uint64_t submit_push(serve::Server& server, Key key,
                            std::uint64_t submit_cycle,
                            std::uint64_t deadline_cycles = 0);

  /// Plans + submits pop(): the request fetches the speculative
  /// sift-down path and erases the last BFS coordinate. Popping a heap
  /// whose speculative size is 1 targets the root and is rejected by the
  /// barrier (kIsRoot) — reported as applied = false.
  std::uint64_t submit_pop(serve::Server& server, std::uint64_t submit_cycle,
                           std::uint64_t deadline_cycles = 0);

  struct Outcome {
    std::uint64_t seq = 0;
    bool is_push = false;
    /// Push: the pushed key. Pop: the key removed (valid iff applied).
    Key key = 0;
    serve::Response response;
    bool applied = false;
  };

  /// Replays this client's applied mutations from the log, in canonical
  /// barrier order, against the local heap array — pops re-derive the
  /// extracted key exactly as a sequential reference would.
  std::vector<Outcome> reconcile(const serve::ServeReport& report);

  [[nodiscard]] std::uint64_t size() const noexcept { return heap_.size(); }
  /// Minimum key (the root's). Heap is never empty.
  [[nodiscard]] Key top() const noexcept { return heap_.front(); }
  [[nodiscard]] std::uint32_t id() const noexcept { return client_; }

 private:
  struct Op {
    Key key = 0;
    bool push = false;
  };

  static void sift_up(std::vector<Key>& heap, std::size_t i,
                      std::vector<Node>* touched);
  static void sift_down(std::vector<Key>& heap, std::vector<Node>* touched);
  /// Pops shadow_ and records the touched sift-down coordinates.
  static Key pop_heap(std::vector<Key>& heap, std::vector<Node>* touched);

  DynamicTree* tree_;
  std::uint32_t client_;
  std::vector<Key> heap_;    ///< authoritative, rebuilt by reconcile
  std::vector<Key> shadow_;  ///< speculative: heap_ + pending ops
  std::vector<Op> ops_;      ///< indexed by seq
  std::uint64_t reconciled_ = 0;
};

}  // namespace pmtree::dyn
