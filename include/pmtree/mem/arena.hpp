// Real per-module memory arenas (DESIGN.md §17).
//
// Everything below the serve layer prices a parallel access in simulated
// cycles: modules are counters, "load" is a histogram bucket, and no byte
// of node data is ever read. That is the right abstraction for the
// paper's combinatorics, but it cannot answer the systems half of the R10
// trade-off — how COLOR's and LABEL-TREE's placements behave under real
// bandwidth and real cache hierarchies. pmtree::mem closes that gap:
//
//   ModuleArena / MemoryBackend — one 64-byte-aligned slab per module,
//     holding the actual payload of every node the placement mapping
//     assigns to that module. Placement is module-major: a module's nodes
//     occupy consecutive slots in BFS order, so the physical layout IS
//     the mapping — two mappings of the same tree produce materially
//     different memory layouts, and a batch's locality (how many slabs it
//     straddles, how its reads stride within one) is measurable instead
//     of notional. (Demaine et al.'s worst-case external-memory tree
//     layouts motivate block-size-aware placement; the bp-forest seat
//     pool is the many-trees-one-pool shape the Forest wiring uses.)
//
//   touch() — performs genuine loads: every 8-byte lane of every
//     requested node's payload is read and folded into a checksum. The
//     fold makes the loads observable (nothing for the compiler to
//     dead-code away) and doubles as an end-to-end data-integrity check:
//     the expected checksum of any node set is computable analytically
//     (expected_node_checksum), so a bench can verify it really read what
//     the arenas hold.
//
// Determinism contract: a backend is immutable after construction —
// touch() only reads — so any number of threads may touch concurrently.
// TouchStats aggregates with commutative arithmetic (sums; the checksum
// is a sum of per-node folds), so an aggregate over a set of batches is
// independent of the order OR the thread the batches were touched on.
// That is what lets the serve layer touch on the oracle's control plane
// but on the pipeline's resolve workers and still report identical
// totals (and bit-identical responses: touches never feed back into any
// scheduling decision).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::mem {

namespace detail {

/// Hex string for JSON export — Json stores numbers as double, which is
/// only exact below 2^53, and checksums use all 64 bits.
[[nodiscard]] inline std::string hex64(std::uint64_t v) {
  char buf[19] = "0x";
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    buf[2 + i] = kDigits[(v >> (60 - 4 * i)) & 0xF];
  }
  buf[18] = '\0';
  return std::string(buf);
}

}  // namespace detail

/// Arena sizing knobs. Defaults model a cache-line-sized node record.
struct ArenaOptions {
  /// Payload bytes per node, rounded up to whole 8-byte lanes (minimum
  /// one lane). The default is one cache line.
  std::uint32_t payload_bytes = 64;
  /// Seed of the deterministic payload fill; two backends with equal
  /// (tree, placement, payload, seed) hold byte-identical arenas.
  std::uint64_t fill_seed = 0x9E3779B97F4A7C15ull;
};

/// What a sequence of touch() calls read. All fields aggregate with
/// commutative arithmetic, so += over any batch order (or thread
/// partition) produces the same totals.
struct TouchStats {
  std::uint64_t nodes = 0;     ///< node payloads read
  std::uint64_t bytes = 0;     ///< bytes read (nodes * stride)
  std::uint64_t checksum = 0;  ///< sum (mod 2^64) of per-node lane folds

  TouchStats& operator+=(const TouchStats& other) noexcept {
    nodes += other.nodes;
    bytes += other.bytes;
    checksum += other.checksum;
    return *this;
  }
  friend bool operator==(const TouchStats&, const TouchStats&) = default;

  [[nodiscard]] Json to_json() const {
    Json j = Json::object();
    j.set("nodes", Json(nodes));
    j.set("bytes", Json(bytes));
    j.set("checksum", Json(detail::hex64(checksum)));
    return j;
  }
};

namespace detail {

/// splitmix64 finalizer: the payload fill's mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Per-module arenas over one placement mapping. The placement mapping
/// (not owned; must outlive the backend) decides which slab each node
/// lives in; it is a *physical* layout decision, frozen at construction —
/// the serve layer may resolve conflicts against a different (e.g.
/// adaptive-epoch) mapping without the data moving, exactly like a real
/// system whose router changes faster than its storage.
class MemoryBackend {
 public:
  explicit MemoryBackend(const TreeMapping& placement,
                         ArenaOptions options = {});

  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  /// Reads every lane of every node's payload; returns what was read.
  /// Thread-safe (const, arenas immutable). Nodes must belong to the
  /// placement tree; duplicates are read once each, like the hardware
  /// would.
  [[nodiscard]] TouchStats touch(std::span<const Node> nodes) const noexcept {
    TouchStats stats;
    std::uint64_t sum = 0;
    const std::size_t lanes = lanes_;
    for (const Node n : nodes) {
      const std::uint64_t* p = addr_[bfs_id(n)];
      std::uint64_t fold = 0;
      for (std::size_t j = 0; j < lanes; ++j) fold ^= p[j];
      sum += fold;
    }
    stats.nodes = nodes.size();
    stats.bytes = nodes.size() * stride_;
    stats.checksum = sum;
    return stats;
  }

  [[nodiscard]] const TreeMapping& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] CompleteBinaryTree tree() const noexcept { return tree_; }
  [[nodiscard]] std::uint32_t modules() const noexcept { return modules_; }
  /// Requested payload bytes per node (pre-rounding).
  [[nodiscard]] std::uint32_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  /// Physical bytes per node slot: payload rounded up to 8-byte lanes.
  [[nodiscard]] std::uint32_t stride_bytes() const noexcept {
    return static_cast<std::uint32_t>(stride_);
  }
  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return tree_.size();
  }
  /// Total resident payload bytes across all slabs.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return tree_.size() * stride_;
  }

  /// The module whose slab holds `n` — by construction the placement
  /// mapping's color_of(n).
  [[nodiscard]] Color module_of(Node n) const noexcept {
    return module_[bfs_id(n)];
  }
  /// `n`'s slot within its module's slab (BFS order within the module).
  [[nodiscard]] std::uint64_t slot_of(Node n) const noexcept {
    return static_cast<std::uint64_t>(addr_[bfs_id(n)] - slab_base(
               module_[bfs_id(n)])) / (stride_ / 8);
  }
  /// Base of module `m`'s slab (64-byte aligned).
  [[nodiscard]] const std::uint64_t* slab_base(Color m) const noexcept {
    return slab_base_[m];
  }
  [[nodiscard]] std::uint64_t slab_nodes(Color m) const noexcept {
    return slab_nodes_[m];
  }
  /// First payload lane of `n` (stride_bytes()/8 lanes long).
  [[nodiscard]] const std::uint64_t* payload(Node n) const noexcept {
    return addr_[bfs_id(n)];
  }

  /// What touch() would fold for `n` alone — computed from the fill
  /// generator, not by reading the arena, so a test comparing it against
  /// touch({n}).checksum verifies the physical bytes.
  [[nodiscard]] std::uint64_t expected_node_checksum(Node n) const noexcept {
    const std::uint64_t id = bfs_id(n);
    std::uint64_t fold = 0;
    for (std::size_t j = 0; j < lanes_; ++j) {
      fold ^= detail::mix64(options_.fill_seed + id * lanes_ + j);
    }
    return fold;
  }

  /// Static layout facts plus the supplied touched totals — the payload
  /// ServeMetrics emits as its "memory" section.
  [[nodiscard]] Json stats(const TouchStats& touched) const;

 private:
  const TreeMapping& placement_;
  CompleteBinaryTree tree_;
  ArenaOptions options_;
  std::uint32_t modules_ = 0;
  std::uint32_t payload_bytes_ = 0;
  std::size_t stride_ = 0;  ///< bytes per node slot (multiple of 8)
  std::size_t lanes_ = 0;   ///< stride_ / 8
  /// One u64 buffer per module, over-allocated so the 64-byte-aligned
  /// slab base can be carved out of it (no custom aligned deleters).
  std::vector<std::vector<std::uint64_t>> slabs_;
  std::vector<std::uint64_t*> slab_base_;      ///< aligned base per module
  std::vector<std::uint64_t> slab_nodes_;      ///< nodes per module
  std::vector<const std::uint64_t*> addr_;     ///< bfs_id -> payload
  std::vector<Color> module_;                  ///< bfs_id -> module
};

}  // namespace pmtree::mem
