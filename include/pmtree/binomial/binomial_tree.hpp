// Binomial trees — the third structure of the paper's Section 1.2 context
// (Das-Pinotti, refs [7], [9]: conflict-free access to "subtrees of a
// binomial tree").
//
// B_n has 2^n nodes under the classic binomial-heap labeling: node labels
// are the integers 0..2^n-1, the parent of v clears v's lowest set bit,
// and the subtree rooted at v is the contiguous label range
// [v, v + 2^rank(v)) where rank(v) = count of trailing zeros of v (the
// root 0 has rank n). Two structural gifts follow:
//
//   * the B_k subtree rooted at any rank-k node is a full residue range
//     modulo 2^k, so color = label mod 2^k is conflict-free on ALL
//     subtree instances of order <= k with the minimal 2^k modules
//     (BinomialSubtreeMapping);
//   * the root path of v visits labels of strictly decreasing popcount,
//     so color = popcount(label) mod M is conflict-free on ascending
//     paths of <= M nodes (BinomialPathMapping).
//
// The two specialists reproduce the reference's flavour of result and
// slot into the same conflict-evaluation framework as the rest of pmtree.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace pmtree {

class BinomialTree {
 public:
  /// B_order: 2^order nodes. Precondition: order <= 60.
  constexpr explicit BinomialTree(std::uint32_t order) noexcept
      : order_(order) {
    assert(order <= 60);
  }

  [[nodiscard]] constexpr std::uint32_t order() const noexcept { return order_; }
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << order_;
  }
  [[nodiscard]] constexpr bool contains(std::uint64_t v) const noexcept {
    return v < size();
  }

  /// rank(v): the order of the binomial subtree rooted at v.
  [[nodiscard]] constexpr std::uint32_t rank(std::uint64_t v) const noexcept {
    return v == 0 ? order_
                  : static_cast<std::uint32_t>(std::countr_zero(v));
  }

  /// Parent: clear the lowest set bit. Precondition: v != 0.
  [[nodiscard]] static constexpr std::uint64_t parent(std::uint64_t v) noexcept {
    assert(v != 0);
    return v & (v - 1);
  }

  /// Depth of v below the root: number of set bits.
  [[nodiscard]] static constexpr std::uint32_t depth(std::uint64_t v) noexcept {
    return static_cast<std::uint32_t>(std::popcount(v));
  }

  /// The nodes of the order-k subtree rooted at v: [v, v + 2^k).
  /// Precondition: k <= rank(v).
  [[nodiscard]] std::vector<std::uint64_t> subtree_nodes(std::uint64_t v,
                                                         std::uint32_t k) const;

  /// Root path of v, bottom-up (v first, root 0 last).
  [[nodiscard]] static std::vector<std::uint64_t> root_path(std::uint64_t v);

 private:
  std::uint32_t order_;
};

/// Visits every order-k subtree instance (rooted at each node of
/// rank >= k, taking its top B_k portion rooted there; following the
/// references we enumerate subtrees rooted at rank-exactly-k nodes plus
/// the root when order >= k — each is a maximal B_k instance).
void for_each_binomial_subtree(
    const BinomialTree& tree, std::uint32_t k,
    const std::function<bool(std::uint64_t root)>& visit);

class BinomialMapping {
 public:
  explicit BinomialMapping(BinomialTree tree) noexcept : tree_(tree) {}
  virtual ~BinomialMapping() = default;

  BinomialMapping(const BinomialMapping&) = default;
  BinomialMapping& operator=(const BinomialMapping&) = delete;

  [[nodiscard]] virtual std::uint32_t color_of(std::uint64_t v) const = 0;
  [[nodiscard]] virtual std::uint32_t num_modules() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const BinomialTree& tree() const noexcept { return tree_; }

 private:
  BinomialTree tree_;
};

/// color = label mod 2^k: CF on every subtree of order <= k (minimal
/// module count 2^k for order-k instances).
class BinomialSubtreeMapping final : public BinomialMapping {
 public:
  BinomialSubtreeMapping(BinomialTree tree, std::uint32_t k)
      : BinomialMapping(tree), k_(k) {}

  [[nodiscard]] std::uint32_t color_of(std::uint64_t v) const override {
    return static_cast<std::uint32_t>(v & ((std::uint64_t{1} << k_) - 1));
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return std::uint32_t{1} << k_;
  }
  [[nodiscard]] std::string name() const override {
    return "BINOMIAL-SUBTREE(k=" + std::to_string(k_) + ")";
  }

 private:
  std::uint32_t k_;
};

/// color = popcount(label) mod M: CF on root-path segments of <= M nodes
/// (depth strictly decreases along the path).
class BinomialPathMapping final : public BinomialMapping {
 public:
  BinomialPathMapping(BinomialTree tree, std::uint32_t M)
      : BinomialMapping(tree), M_(M) {}

  [[nodiscard]] std::uint32_t color_of(std::uint64_t v) const override {
    return BinomialTree::depth(v) % M_;
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "BINOMIAL-PATH(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

/// Conflicts of one access over labels.
[[nodiscard]] std::uint64_t binomial_conflicts(const BinomialMapping& mapping,
                                               std::span<const std::uint64_t> nodes);

/// Exhaustive worst case over order-k subtree instances.
[[nodiscard]] std::uint64_t evaluate_binomial_subtrees(
    const BinomialMapping& mapping, std::uint32_t k);

/// Exhaustive worst case over `size`-node root-path segments (each node's
/// root path, split into windows of `size`).
[[nodiscard]] std::uint64_t evaluate_binomial_paths(
    const BinomialMapping& mapping, std::uint64_t size);

}  // namespace pmtree
