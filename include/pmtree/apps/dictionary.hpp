// Dictionary: an ordered static dictionary on a complete binary search
// tree, the paper's other Section 1.1 motivation ("heaps and dictionaries
// are among the two most popular data structures implemented with trees").
//
// Keys are stored in *every* node in symmetric (in-order) order, so BST
// navigation works by comparison. A parallel search speculatively fetches
// the whole root-to-leaf path in one parallel access — the standard PRAM
// technique the P-template models: with a conflict-free mapping of path
// length H, a lookup costs a single memory round regardless of where the
// key sits.
//
// Operations return the accessed node set so callers can route them
// through a MemorySystem.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

class Dictionary {
 public:
  using Key = std::int64_t;

  /// Builds the dictionary over exactly 2^levels - 1 sorted distinct keys.
  /// Precondition: keys sorted ascending, size is 2^t - 1 for some t >= 1.
  explicit Dictionary(const std::vector<Key>& sorted_keys);

  struct SearchResult {
    bool found = false;
    Node node;                   ///< where the key lives (valid iff found)
    std::vector<Node> accessed;  ///< the speculative root-to-leaf path
  };

  /// Parallel search: accesses one full root-to-leaf path (a P-template
  /// instance of size levels()).
  [[nodiscard]] SearchResult search(Key key) const;

  /// Key stored at a node.
  [[nodiscard]] Key key_at(Node n) const noexcept { return keys_[bfs_id(n)]; }

  /// Smallest key >= `key`, if any (walks the same speculative path).
  [[nodiscard]] std::optional<Key> successor(Key key) const;

  [[nodiscard]] const CompleteBinaryTree& tree() const noexcept { return tree_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return keys_.size(); }

  /// In-order traversal position of a node (0-based) — the dictionary rank
  /// of its key. Exposed because the closed form (no walking) is one of
  /// the pleasant facts about complete BSTs this module relies on.
  [[nodiscard]] static std::uint64_t inorder_rank(Node n,
                                                  std::uint32_t levels) noexcept;

 private:
  CompleteBinaryTree tree_;
  std::vector<Key> keys_;  ///< indexed by bfs_id, in-order key layout
};

}  // namespace pmtree
