// ParallelHeap: a binary min-heap laid out on a complete binary tree,
// instrumented to expose every operation's memory access as a P-template
// instance (Section 1.1 of the paper: "operations like insertion of a new
// key and decrease-key are traditionally implemented by accessing all the
// nodes of a leaf-to-root path of the tree ... the deletion of the minimum
// can also be implemented by accessing all the nodes of a suitable
// leaf-to-root path").
//
// The heap is fully functional (insert / decrease-key / extract-min with
// the usual invariants); each operation returns the ascending path it
// touched so callers can route it through a MemorySystem and observe the
// conflict behaviour of the underlying tree mapping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

class ParallelHeap {
 public:
  using Key = std::int64_t;

  /// A heap with capacity 2^levels - 1 keys.
  explicit ParallelHeap(std::uint32_t levels);

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return keys_.size(); }
  [[nodiscard]] const CompleteBinaryTree& tree() const noexcept { return tree_; }

  /// Builds a heap of the given capacity holding `keys` (Floyd's
  /// bottom-up heapify, O(n)). Precondition: keys.size() <= capacity.
  [[nodiscard]] static ParallelHeap from_keys(std::uint32_t levels,
                                              const std::vector<Key>& keys);

  /// Smallest key, if any.
  [[nodiscard]] std::optional<Key> min() const noexcept;

  /// Inserts `key`; returns the ascending path (new slot up to the root)
  /// accessed by the parallel algorithm. Precondition: size() < capacity().
  std::vector<Node> insert(Key key);

  /// Decreases the key stored at heap slot `pos` (BFS position, < size())
  /// to `new_key` (must not exceed the current key); returns the accessed
  /// ascending path.
  std::vector<Node> decrease_key(std::uint64_t pos, Key new_key);

  /// Removes the minimum into `*out`; returns the accessed leaf-to-root
  /// path (the path of the last heap slot, along which the replacement
  /// key settles). Precondition: size() > 0.
  std::vector<Node> extract_min(Key* out);

  /// Key at heap slot `pos` (BFS position). Precondition: pos < size().
  [[nodiscard]] Key key_at(std::uint64_t pos) const noexcept {
    return keys_[pos];
  }

  /// True iff every parent <= child — the heap invariant (test hook).
  [[nodiscard]] bool is_valid_heap() const noexcept;

 private:
  /// Root path of the slot as an ascending P-template node set.
  [[nodiscard]] std::vector<Node> root_path(std::uint64_t pos) const;

  void sift_up(std::uint64_t pos);
  void sift_down(std::uint64_t pos);

  CompleteBinaryTree tree_;
  std::vector<Key> keys_;  ///< slot i <-> node bfs_id i; first size_ used
  std::uint64_t size_ = 0;
};

}  // namespace pmtree
