// RangeIndex: a static search tree over sorted keys, implemented as a
// complete binary tree, whose range queries decompose into the paper's
// composite template (Section 1.1: "a range query means accessing (in
// parallel) all the nodes whose keys belong to a given range ... a
// composite template consisting of a set of complete subtrees and a path").
//
// Keys live in the leaves (padded to a power of two with +infinity
// sentinels); each internal node stores the maximum key of its left
// subtree, the classic routing invariant. query() returns both the
// answer and the exact composite template instance accessed, so callers
// can measure the access's conflict cost under any mapping.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "pmtree/templates/instance.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

class RangeIndex {
 public:
  using Key = std::int64_t;
  static constexpr Key kSentinel = std::numeric_limits<Key>::max();

  /// Builds the index over `sorted_keys` (must be sorted ascending, not
  /// containing kSentinel). Precondition: not empty.
  explicit RangeIndex(std::vector<Key> sorted_keys);

  struct QueryResult {
    std::vector<Key> keys;              ///< keys in [lo, hi], ascending
    CompositeInstance decomposition;    ///< the C-template instance accessed
    std::vector<Node> accessed;         ///< its flattened node set
  };

  /// All keys in the closed interval [lo, hi].
  [[nodiscard]] QueryResult query(Key lo, Key hi) const;

  [[nodiscard]] const CompleteBinaryTree& tree() const noexcept { return tree_; }
  [[nodiscard]] std::uint64_t key_count() const noexcept { return key_count_; }

  /// Routing value at a node: leaf -> its key (or sentinel padding),
  /// internal -> max key of its left subtree.
  [[nodiscard]] Key value_at(Node n) const noexcept;

 private:
  CompleteBinaryTree tree_;
  std::vector<Key> values_;  ///< indexed by bfs_id
  std::uint64_t key_count_;
};

}  // namespace pmtree
