// Streaming summary statistics (count / min / max / mean) used by the
// analysis layer and the memory-system simulator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace pmtree {

/// Accumulates integer observations and exposes count/min/max/mean/sum and
/// population variance (via the sum of squares, which is exact for the
/// magnitudes pmtree tracks). Single-threaded; the simulator aggregates
/// one accumulator per worker and merges at the end (see merge()).
class Accumulator {
 public:
  constexpr void add(std::uint64_t value) noexcept {
    count_ += 1;
    sum_ += value;
    sum_sq_ += value * value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  constexpr void merge(const Accumulator& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr std::uint64_t sum() const noexcept { return sum_; }
  /// Minimum observed value; max uint64 when empty.
  [[nodiscard]] constexpr std::uint64_t min() const noexcept { return min_; }
  /// Maximum observed value; 0 when empty.
  [[nodiscard]] constexpr std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] constexpr double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return count_ == 0; }

  /// Population variance; 0 when empty.
  [[nodiscard]] constexpr double variance() const noexcept {
    if (count_ == 0) return 0.0;
    const double n = static_cast<double>(count_);
    const double mu = static_cast<double>(sum_) / n;
    return static_cast<double>(sum_sq_) / n - mu * mu;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t sum_sq_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace pmtree
