#pragma once

// Runtime-dispatched SIMD kernels for the serve pipeline's two hot loops:
// table-gather color lookups (ColorMapping::color_of_batch) and the
// per-batch conflict histogram that seeds run scheduling.
//
// Dispatch contract:
//   - The default build carries no -march flags, so the AVX2 bodies are
//     compiled with per-function target attributes and selected at runtime
//     via __builtin_cpu_supports("avx2"). Non-x86 builds and
//     -DPMTREE_DISABLE_SIMD builds keep only the scalar bodies.
//   - Every kernel has a scalar twin with bit-identical output; the
//     differential property suite (test_util_simd) enforces this, and
//     force_scalar_for_testing() lets in-process tests exercise both paths
//     regardless of host CPU.

#include <cstddef>
#include <cstdint>

namespace pmtree::simd {

/// True when the AVX2 kernels are compiled in, the host CPU supports them,
/// and no test override is active. Callers never need to check this —
/// gather_u32 / conflict_histogram dispatch internally — but benches and
/// metrics report it.
[[nodiscard]] bool available() noexcept;

/// Name of the kernel set the dispatcher would pick right now:
/// "avx2" or "scalar".
[[nodiscard]] const char* active_kernel() noexcept;

/// Testing hook: when true, dispatch ignores CPU support and runs the
/// scalar bodies. Not for production use; the differential tests flip it
/// to compare both paths in one process.
void force_scalar_for_testing(bool force) noexcept;

/// out[i] = table[idx[i]] for i in [0, n). Indices must be < 2^31 (the
/// AVX2 gather consumes them as signed lane offsets); the color paths
/// satisfy this by construction (top tables are capped at 2^20 entries and
/// eager tables are gated at 2^31).
void gather_u32(const std::uint32_t* table, const std::uint32_t* idx,
                std::size_t n, std::uint32_t* out);

/// counts[m] = |{ i : colors[i] == m }| for m in [0, modules); counts is
/// overwritten, not accumulated. Every colors[i] must be < modules.
/// The AVX2 body covers modules <= 64 with one-hot u16 lane accumulation;
/// wider module counts fall back to the scalar body.
void conflict_histogram(const std::uint32_t* colors, std::size_t n,
                        std::uint32_t* counts, std::uint32_t modules);

}  // namespace pmtree::simd
