// Minimal JSON value type with serializer and parser.
//
// Every machine-readable artifact pmtree emits goes through this one type:
// metrics snapshots (engine/metrics.hpp), bench trajectory files, serve
// reports, and pms traces (Trace::to_json) — and the property tests
// re-parse those exports to prove the round trip is lossless. Scope is
// exactly the JSON those producers emit: objects, arrays, strings, finite
// numbers, booleans, null; numbers are stored as double (exact for the
// uint64 magnitudes pmtree records, which stay below 2^53) with integral
// values serialized without a decimal point. Object key order is preserved
// so exports diff cleanly.
//
// The type lives in util (namespace pmtree) so that layers below the
// engine — pms traces in particular — can export JSON without a dependency
// cycle; pmtree/engine/json.hpp re-exports it as engine::Json for the
// existing engine-layer spelling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pmtree {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() noexcept : type_(Type::kNull) {}
  Json(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Json(double v) noexcept : type_(Type::kNumber), number_(v) {}
  Json(std::uint64_t v) noexcept
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(int v) noexcept : type_(Type::kNumber), number_(v) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] std::uint64_t as_uint() const noexcept {
    return static_cast<std::uint64_t>(number_);
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const std::vector<Json>& items() const noexcept { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return members_;
  }

  /// Array append. Precondition: type() == kArray.
  void push_back(Json value) { items_.push_back(std::move(value)); }

  /// Object insert/overwrite (linear scan; objects here are small).
  /// Precondition: type() == kObject.
  void set(const std::string& key, Json value);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<Json> parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace pmtree
