// Deterministic, fast pseudo-random number generation for workload
// generators, samplers and the randomized baseline mapping.
//
// SplitMix64 is used both as a seeding/stateless hash (RandomMapping needs
// a pure function of the node id) and as the state-advance of the stream
// generator. It passes BigCrush-level statistics for these purposes and,
// unlike std::mt19937_64, gives identical streams across standard library
// implementations — benches and tests rely on that reproducibility.
#pragma once

#include <cstdint>
#include <limits>

namespace pmtree {

/// Stateless SplitMix64 finalizer: a high-quality 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Small deterministic PRNG (SplitMix64 stream). Satisfies the parts of
/// UniformRandomBitGenerator that pmtree needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : state_(seed) {}

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection-free approximation, which is
  /// unbiased enough for workload generation (bias < 2^-64 * bound).
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(operator()()) * bound) >> 64);
  }

  /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] constexpr std::uint64_t between(std::uint64_t lo,
                                                std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with probability num/den. Precondition: den > 0.
  [[nodiscard]] constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace pmtree
