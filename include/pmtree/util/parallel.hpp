// Deterministic chunked parallel-for.
//
// The analysis layer wants wall-clock parallelism without giving up the
// library's reproducibility guarantees, so the primitive here is shaped
// for deterministic reductions rather than generality: the index space
// [0, count) is cut into fixed-size chunks, worker threads claim chunks
// from a shared atomic counter, and the body receives (thread_id, begin,
// end). Two properties matter to callers:
//
//   * chunk boundaries depend only on (count, grain) — never on timing —
//     so any per-index work is identical across runs and thread counts;
//   * a given thread claims chunks in increasing order, so per-thread
//     accumulators see their indices ascending, which lets a reduction
//     keep "first index attaining the maximum" semantics exactly (see
//     CostAccumulator in src/analysis/cost.cpp).
//
// With threads == 1 (or a single chunk) everything runs inline on the
// calling thread and no std::thread is spawned.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pmtree {

/// Resolves a requested worker count: 0 means one worker per hardware
/// thread (at least 1 when the runtime cannot tell).
[[nodiscard]] inline unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs body(thread_id, begin, end) over [0, count) in chunks of `grain`
/// indices. thread_id < threads; each index is visited exactly once.
/// Exceptions escaping `body` on a worker thread terminate (the analysis
/// bodies do not throw).
template <typename Body>
void parallel_chunks(std::uint64_t count, unsigned threads,
                     std::uint64_t grain, Body&& body) {
  threads = std::max(threads, 1u);
  grain = std::max<std::uint64_t>(grain, 1);
  if (count == 0) return;
  const std::uint64_t num_chunks = (count + grain - 1) / grain;
  if (threads == 1 || num_chunks == 1) {
    body(0u, std::uint64_t{0}, count);
    return;
  }

  std::atomic<std::uint64_t> next{0};
  const auto worker = [&](unsigned tid) {
    while (true) {
      const std::uint64_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const std::uint64_t begin = chunk * grain;
      body(tid, begin, std::min(count, begin + grain));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0u);
  for (auto& th : pool) th.join();
}

}  // namespace pmtree
