// Bit-manipulation helpers used throughout pmtree.
//
// The paper's index arithmetic is entirely powers-of-two based: template
// sizes are K = 2^k - 1, blocks have size 2^{k-1}, node indices within a
// level are split by shifts. These helpers centralize that arithmetic with
// well-defined behaviour at the boundaries (0, 1, 2^63).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace pmtree {

/// 2^e as a 64-bit value. Precondition: e < 64.
[[nodiscard]] constexpr std::uint64_t pow2(std::uint32_t e) noexcept {
  assert(e < 64);
  return std::uint64_t{1} << e;
}

/// floor(log2(x)). Precondition: x > 0.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  assert(x > 0);
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// ceil(log2(x)). Precondition: x > 0. ceil_log2(1) == 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  assert(x > 0);
  return x == 1 ? 0 : floor_log2(x - 1) + 1;
}

/// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && std::has_single_bit(x);
}

/// True iff x == 2^t - 1 for some t >= 1, i.e. x is a valid complete-tree
/// (and S-template) size.
[[nodiscard]] constexpr bool is_tree_size(std::uint64_t x) noexcept {
  return x != 0 && is_pow2(x + 1);
}

/// Number of levels of a complete binary tree of `size` nodes.
/// Precondition: is_tree_size(size). tree_levels(1) == 1, tree_levels(7) == 3.
[[nodiscard]] constexpr std::uint32_t tree_levels(std::uint64_t size) noexcept {
  assert(is_tree_size(size));
  return floor_log2(size + 1);
}

/// Number of nodes of a complete binary tree with `levels` levels:
/// 2^levels - 1. Precondition: 1 <= levels <= 63.
[[nodiscard]] constexpr std::uint64_t tree_size(std::uint32_t levels) noexcept {
  assert(levels >= 1 && levels <= 63);
  return pow2(levels) - 1;
}

/// ceil(a / b) for b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  assert(b > 0);
  return (a + b - 1) / b;
}

}  // namespace pmtree
