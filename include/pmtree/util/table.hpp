// Minimal fixed-column ASCII table writer used by the benchmark harness to
// regenerate the paper's result tables in a uniform format.
//
// The writer is deliberately dumb: every cell is a string, column widths are
// computed from content, output is plain text so bench logs diff cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace pmtree {

class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells via std::to_string.
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> r;
    r.reserve(sizeof...(Ts));
    (r.push_back(to_cell(cells)), ...);
    add_row(std::move(r));
  }

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string.
  [[nodiscard]] std::string str() const;

  /// Renders as CSV (RFC-4180 quoting for cells containing commas,
  /// quotes or newlines), header first.
  void print_csv(std::ostream& os) const;
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      return format_double(static_cast<double>(v));
    } else {
      return std::to_string(v);
    }
  }
  static std::string format_double(double v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmtree
