// Fault injection: deterministic failure schedules for parallel memory
// systems.
//
// The paper's machine model — and every layer built on it so far —
// assumes all M modules are permanently healthy. Production parallel
// memory systems are not: modules fail outright (a dead DRAM rank, an
// evicted cache shard) and degrade transiently (thermal throttling, a
// background scrub stealing service slots). The memory-bounded
// tree-scheduling literature cited in serve/admission.hpp treats degraded
// resource availability as first-class; this layer does the same for the
// pmtree engines.
//
// A FaultPlan is a *schedule*, not a random process: a list of fail-stop
// events (module m is dead from cycle c onward) and transient slowdowns
// (module m serves one request every `period` cycles during [begin, end)),
// optionally generated from a seed by FaultPlan::random. Determinism is
// the point — the same plan produces bit-identical trajectories on the
// event-driven core, the frozen reference loop, any sharded worker count,
// and any serve worker count, so degraded behaviour is testable and
// benchmarkable exactly like healthy behaviour (DESIGN.md §12).
//
// Semantics under a plan (implemented identically by CycleEngine and
// ReferenceEngine):
//
//   * fail-stop  — at the first busy cycle t >= cycle, the module's queue
//     is drained FIFO onto its reroute target, and every later request
//     colored to it is enqueued on the target instead. Reroute targets
//     are assigned round-robin: the j-th dead module (ascending id) maps
//     to the j-th live module mod |live| — the same rule DegradedMapping
//     applies to colors, so the engine's degraded routing and the
//     analysis layer's degraded mapping agree.
//   * slowdown   — while t is in [begin, end), the module serves only on
//     cycles with (t - begin) % period == 0; its queue otherwise stalls
//     in place (counted in EngineResult::stalled_cycles).
//
// Fail-stops reroute (never deadlock); slowdowns stall (bounded by the
// period). Every access therefore still completes, just later — degraded,
// not dead.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/util/json.hpp"

namespace pmtree::fault {

/// Module `module` is dead — serves nothing, queue rerouted — for every
/// cycle t >= cycle.
struct FailStop {
  std::uint32_t module = 0;
  std::uint64_t cycle = 0;
};

/// Module `module` serves only on cycles t in [begin, end) with
/// (t - begin) % period == 0 (and serves normally outside the interval).
/// period is clamped to >= 1 at compile time (period 1 is a no-op).
struct Slowdown {
  std::uint32_t module = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t period = 1;
};

class FaultPlan {
 public:
  /// The empty plan: no faults. Engines treat it exactly as "no plan" —
  /// the differential suite pins bit-identity to the fault-free run.
  FaultPlan() = default;

  FaultPlan& fail_stop(std::uint32_t module, std::uint64_t cycle) {
    fail_stops_.push_back(FailStop{module, cycle});
    return *this;
  }
  FaultPlan& slow_down(std::uint32_t module, std::uint64_t begin,
                       std::uint64_t end, std::uint64_t period) {
    slowdowns_.push_back(Slowdown{module, begin, end, period});
    return *this;
  }

  [[nodiscard]] bool empty() const noexcept {
    return fail_stops_.empty() && slowdowns_.empty();
  }
  [[nodiscard]] const std::vector<FailStop>& fail_stops() const noexcept {
    return fail_stops_;
  }
  [[nodiscard]] const std::vector<Slowdown>& slowdowns() const noexcept {
    return slowdowns_;
  }

  /// Knobs for the seeded generator. Every drawn value is a pure function
  /// of (seed, the other fields), so a RandomOptions value *is* a
  /// reproducible fault scenario.
  struct RandomOptions {
    std::uint64_t seed = 0;
    std::uint32_t modules = 0;      ///< module universe the plan draws from
    /// Fraction of modules fail-stopped, rounded down and capped at
    /// modules - 1 (at least one survivor always remains).
    double fail_fraction = 0.1;
    /// Fail cycles are drawn uniformly from [0, fail_window).
    std::uint64_t fail_window = 1024;
    std::uint32_t slowdown_count = 0;   ///< transient slowdowns to draw
    std::uint64_t slowdown_window = 1024;  ///< begins drawn from [0, window)
    std::uint64_t slowdown_max_length = 256;
    std::uint64_t slowdown_max_period = 4;  ///< periods drawn from [2, max]
  };

  /// Deterministic seeded plan: `fail_fraction` of the modules fail-stop
  /// at random cycles and `slowdown_count` transient slowdowns land on
  /// random modules. Identical options produce identical plans on every
  /// platform (util/rng.hpp streams).
  [[nodiscard]] static FaultPlan random(const RandomOptions& options);

  /// Machine-readable form for bench reports.
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<FailStop> fail_stops_;
  std::vector<Slowdown> slowdowns_;
};

/// A FaultPlan compiled against a concrete module count: O(1) per-module
/// queries plus the reroute table, shared by both engine implementations
/// (and mirrored by DegradedMapping on the analysis side). Entries naming
/// modules >= `modules` are ignored. If the plan would fail-stop every
/// module, the one with the latest fail cycle (ties: highest id) is
/// spared so that reroute targets always exist — degraded service beats
/// a deadlocked simulation.
class FaultTimeline {
 public:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  FaultTimeline(const FaultPlan& plan, std::uint32_t modules);

  /// First cycle module m is dead, or kNever.
  [[nodiscard]] std::uint64_t fail_cycle(std::uint32_t m) const noexcept {
    return fail_cycle_[m];
  }
  [[nodiscard]] bool dead_at(std::uint32_t m, std::uint64_t t) const noexcept {
    return t >= fail_cycle_[m];
  }
  /// Whether module m retires a request at (the service step of) cycle t:
  /// alive, and no slowdown interval is skipping this cycle.
  [[nodiscard]] bool serves_at(std::uint32_t m, std::uint64_t t) const {
    if (t >= fail_cycle_[m]) return false;
    for (const Slowdown& s : slow_by_module_[m]) {
      if (t >= s.begin && t < s.end && (t - s.begin) % s.period != 0) {
        return false;
      }
    }
    return true;
  }

  /// Reroute target of color c: c itself while alive; the round-robin
  /// survivor for ever-failing modules (j-th dead ascending -> j-th live
  /// mod |live|). A pure function of the dead set.
  [[nodiscard]] std::uint32_t redirect(std::uint32_t c) const noexcept {
    return redirect_[c];
  }

  /// Modules with a fail-stop in the plan, ascending. (Timeline-wide:
  /// these are dead *eventually*, not necessarily at cycle 0.)
  [[nodiscard]] const std::vector<std::uint32_t>& dead_modules()
      const noexcept {
    return dead_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& live_modules()
      const noexcept {
    return live_;
  }

  /// Fail-stop events sorted by (cycle, module) — the order engines drain
  /// failed queues in.
  struct FailEvent {
    std::uint64_t cycle = 0;
    std::uint32_t module = 0;
  };
  [[nodiscard]] const std::vector<FailEvent>& fail_events() const noexcept {
    return fail_events_;
  }

  [[nodiscard]] bool any_faults() const noexcept {
    return !fail_events_.empty() || has_slowdowns_;
  }
  [[nodiscard]] std::uint32_t modules() const noexcept {
    return static_cast<std::uint32_t>(fail_cycle_.size());
  }

 private:
  std::vector<std::uint64_t> fail_cycle_;           // per module; kNever = alive
  std::vector<std::uint32_t> redirect_;             // per color
  std::vector<std::uint32_t> dead_;                 // ascending module ids
  std::vector<std::uint32_t> live_;                 // ascending module ids
  std::vector<FailEvent> fail_events_;              // (cycle, module) order
  std::vector<std::vector<Slowdown>> slow_by_module_;
  bool has_slowdowns_ = false;
};

}  // namespace pmtree::fault
