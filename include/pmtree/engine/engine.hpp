// CycleEngine: the cycle-accurate parallel-memory queueing engine.
//
// MemorySystem charges each access its busiest module's occupancy and
// BatchScheduler collapses a whole batch into its closed-form makespan;
// both are aggregates — they say nothing about *when* requests drain, how
// deep module queues get in between, or what latency an individual access
// observes under contention. CycleEngine produces exactly that
// trajectory: accesses arrive per an ArrivalSchedule, every request joins
// its module's FIFO queue, and each module retires one request per cycle
// (the paper's service model, now with time made explicit). An access
// completes when its last request is served; its latency is completion
// minus arrival.
//
// The two closed-form models are recovered as special cases — the
// differential tests hold the engine to them:
//
//   * all-at-once arrivals:  completion_cycle == BatchScheduler makespan;
//   * serialized arrivals:   each access's service time == cost.hpp
//                            rounds(), and completion_cycle == the sum
//                            (MemorySystem::total_rounds).
//
// The core is event-driven rather than scalar (DESIGN.md §8): module
// FIFOs live in one flat arena sized from the admitted request count,
// service touches only an active-module worklist, and whole busy spans
// are retired in bulk when no arrival can land inside them. The frozen
// PR-1 loop survives as ReferenceEngine (reference.hpp), the semantics
// oracle the event core is differentially tested against.
//
// Everything the engine observes lands in an EngineResult and, when a
// MetricsRegistry is supplied, in named instruments under a caller-chosen
// prefix, ready for JSON export (see metrics.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmtree/engine/arrival.hpp"
#include "pmtree/engine/histogram.hpp"
#include "pmtree/engine/metrics.hpp"
#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/pms/workload.hpp"

namespace pmtree::mem {
class MemoryBackend;
}  // namespace pmtree::mem

namespace pmtree::engine {

/// Per-access trajectory record.
struct AccessRecord {
  std::uint64_t id = 0;
  std::uint64_t requests = 0;
  std::uint64_t arrival = 0;     ///< cycle the access entered the queues
  std::uint64_t completion = 0;  ///< cycle its last request finished

  [[nodiscard]] std::uint64_t latency() const noexcept {
    return completion - arrival;
  }
};

struct EngineResult {
  std::uint64_t accesses = 0;
  std::uint64_t requests = 0;
  std::uint64_t completion_cycle = 0;  ///< when the last access finished
  std::uint64_t busy_cycles = 0;       ///< cycles with >= 1 request in flight
  /// Requests enqueued on (or drained to) a reroute target because their
  /// own module was fail-stopped. Zero without a FaultPlan.
  std::uint64_t rerouted_requests = 0;
  /// Module-cycles where a backlogged module was kept from serving by a
  /// transient slowdown. Zero without a FaultPlan.
  std::uint64_t stalled_cycles = 0;
  /// Real-memory traffic (pmtree/mem/arena.hpp): node payloads / bytes
  /// actually loaded from the per-module arenas, and the order-invariant
  /// checksum of what was read. All zero without EngineOptions::memory —
  /// the backend observes the run, it never alters the trajectory.
  std::uint64_t mem_nodes_touched = 0;
  std::uint64_t mem_bytes_touched = 0;
  std::uint64_t mem_checksum = 0;
  std::vector<AccessRecord> records;   ///< one entry per access, in order
  std::vector<std::uint64_t> served;   ///< per-module requests served
  std::vector<std::uint64_t> queue_high_water;  ///< per-module depth peak
  Histogram latency;     ///< per-access latency distribution
  Histogram queue_depth; ///< per-module depth sampled every busy cycle

  /// Mean requests retired per busy cycle (<= modules).
  [[nodiscard]] double throughput() const noexcept {
    return busy_cycles == 0 ? 0.0
                            : static_cast<double>(requests) /
                                  static_cast<double>(busy_cycles);
  }

  /// Peak queue depth across all modules.
  [[nodiscard]] std::uint64_t max_queue_depth() const noexcept;

  /// Per-module heat view over the run: the hottest module's served
  /// count. The serve layer's skew-adaptive planner keys off this shape
  /// of imbalance (DESIGN.md §15).
  [[nodiscard]] std::uint64_t max_module_served() const noexcept;

  /// Load imbalance = hottest module / mean module load (1.0 = perfectly
  /// balanced; 0.0 when nothing was served). The makespan of a batch is
  /// governed by its hottest module, so this is the factor a remapping
  /// can hope to recover.
  [[nodiscard]] double load_imbalance() const noexcept;

  /// Full trajectory snapshot as JSON (scalars, percentiles, per-module
  /// arrays) — the payload bench_e16 writes as a BENCH_*.json file.
  [[nodiscard]] Json to_json() const;
};

/// Knobs for the event-driven core. Trajectory semantics — completion
/// cycles, latencies, served counts, high-water marks, busy cycles — are
/// identical under every setting; the options only gate how much
/// observability (queue-depth sampling) is paid for, which is what decides
/// whether busy spans may be retired in bulk (DESIGN.md §8).
struct EngineOptions {
  enum class DepthSampling : std::uint8_t {
    /// Sample every module's depth on every busy cycle (the PR-1
    /// behaviour). Full-fidelity histograms pin the engine to per-cycle
    /// stepping, so only idle gaps are skipped.
    kEveryBusyCycle,
    /// Sample on busy-cycle ordinals divisible by `sample_stride`. The
    /// sampled multiset is a deterministic function of (workload,
    /// schedule, stride) — bulk-skipped spans reconstruct their sampled
    /// depths exactly — so the histogram does not depend on how the
    /// engine chose to step.
    kStrided,
    /// No depth sampling; `EngineResult::queue_depth` stays empty.
    kOff,
  };

  DepthSampling sampling = DepthSampling::kEveryBusyCycle;
  /// kStrided only: sample busy-cycle ordinals ≡ 0 (mod sample_stride).
  /// Clamped to >= 1.
  std::uint64_t sample_stride = 64;
  /// Optional fault schedule (not owned; must outlive the run). nullptr or
  /// an empty plan take the healthy fast path bit for bit; a non-empty
  /// plan switches to the per-cycle degraded loop (fail-stopped modules
  /// drain onto reroute targets, slowed modules stall — fault/plan.hpp).
  const fault::FaultPlan* faults = nullptr;
  /// Optional real-memory backend (not owned; must outlive the run).
  /// When set, every access's node payloads are actually loaded from the
  /// per-module arenas and accounted in EngineResult::mem_* — purely
  /// observational, so the trajectory is bit-identical with it on or off.
  const mem::MemoryBackend* memory = nullptr;
};

class CycleEngine {
 public:
  /// `metrics` (optional) receives instruments named `<prefix>.accesses`,
  /// `.requests`, `.cycles`, `.busy_cycles`, `.latency` (histogram),
  /// `.queue_depth` (histogram), `.queue_high_water` (gauge).
  explicit CycleEngine(const TreeMapping& mapping,
                       MetricsRegistry* metrics = nullptr,
                       std::string prefix = "engine")
      : mapping_(mapping), metrics_(metrics), prefix_(std::move(prefix)) {}

  /// Feeds `workload` through the module queues under `schedule` and
  /// drains them to completion with full per-busy-cycle depth sampling
  /// (EngineOptions{}).
  [[nodiscard]] EngineResult run(const Workload& workload,
                                 const ArrivalSchedule& schedule) const {
    return run(workload, schedule, EngineOptions{});
  }

  /// Same trajectory under caller-chosen observability cost.
  [[nodiscard]] EngineResult run(const Workload& workload,
                                 const ArrivalSchedule& schedule,
                                 const EngineOptions& options) const;

 private:
  const TreeMapping& mapping_;
  MetricsRegistry* metrics_;
  std::string prefix_;
};

namespace detail {

/// The healthy simulation core over pre-resolved colors: access i's
/// requests are colors[first[i]] .. colors[first[i+1]-1] and route to
/// those modules verbatim. CycleEngine::run flattens + color-resolves and
/// calls this; EngineSession::drain (session.hpp) accumulates the same
/// arrays incrementally and calls it too — one loop, so the two entry
/// points are bit-identical by construction. `options.faults` must be
/// null or empty (the degraded loop needs nodes for rerouting and lives
/// in engine.cpp).
[[nodiscard]] EngineResult run_resolved(std::uint32_t modules,
                                        std::span<const std::size_t> first,
                                        std::span<const Color> colors,
                                        const ArrivalSchedule& schedule,
                                        const EngineOptions& options);

}  // namespace detail

}  // namespace pmtree::engine
