// ShardedEngineRunner: scale-out over independent memory-system replicas.
//
// One CycleEngine models a single parallel memory system; serving "heavy
// traffic from millions of users" means running many replicas and
// spreading the stream across them. The runner models exactly that: a
// round-robin front-end assigns access i to shard i mod S, each of the S
// shards is an independent replica of the mapping's module array admitting
// its sub-stream under the same ArrivalSchedule on its own clock, and the
// shard trajectories are folded into one merged EngineResult.
//
// Determinism contract (the PR-2 rule, applied to the engine): the
// partition is a function of (workload, shards) and each shard's result is
// the scalar engine's result on its sub-workload no matter which worker
// thread computes it, so the output — per-shard and merged, including
// every histogram bucket — is bit-identical at any thread count.
// tests/test_engine_sharded.cpp pins that at 1/2/8 threads.
//
// Merge semantics (shards run concurrently on a shared clock):
//   * accesses / requests / busy_cycles / served[m] / histograms — summed
//     (histograms merged in shard order; bucket addition is commutative);
//   * completion_cycle / queue_high_water[m] — max over shards;
//   * records — re-interleaved to workload order, ids rewritten to global
//     access ids (merged.records[i] is shard i mod S's record i div S).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pmtree/engine/engine.hpp"

namespace pmtree::engine {

struct ShardedOptions {
  /// Number of independent replicas the stream is spread over. 0 behaves
  /// as 1; shards == 1 reproduces the scalar engine exactly.
  std::size_t shards = 1;
  /// Worker threads running shard engines (0 = one per hardware thread).
  /// Results NEVER depend on this — it is wall-clock only.
  unsigned threads = 0;
  /// Per-shard engine knobs (depth sampling / cycle skipping).
  EngineOptions engine;
};

struct ShardedResult {
  std::vector<EngineResult> shards;  ///< per-shard trajectories, shard order
  EngineResult merged;               ///< fold per the merge semantics above
};

class ShardedEngineRunner {
 public:
  /// `metrics` (optional) receives the merged trajectory under
  /// `<prefix>.*` (same instrument names as CycleEngine) plus a
  /// `<prefix>.shards` counter.
  explicit ShardedEngineRunner(const TreeMapping& mapping,
                               MetricsRegistry* metrics = nullptr,
                               std::string prefix = "sharded")
      : mapping_(mapping), metrics_(metrics), prefix_(std::move(prefix)) {}

  [[nodiscard]] ShardedResult run(const Workload& workload,
                                  const ArrivalSchedule& schedule,
                                  const ShardedOptions& options = {}) const;

  /// The deterministic round-robin partition: access i becomes shard
  /// (i mod shards)'s access number (i div shards). Round-robin (rather
  /// than contiguous ranges) spreads heterogeneous access sizes evenly
  /// across replicas. Exposed so tests and tools can reproduce shard
  /// sub-workloads independently.
  [[nodiscard]] static std::vector<Workload> partition(
      const Workload& workload, std::size_t shards);

 private:
  const TreeMapping& mapping_;
  MetricsRegistry* metrics_;
  std::string prefix_;
};

}  // namespace pmtree::engine
