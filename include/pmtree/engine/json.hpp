// Compatibility spelling of the JSON value type at its historical engine
// location. The class itself moved to pmtree/util/json.hpp (namespace
// pmtree) so that layers below the engine — pms traces in particular —
// can emit the same machine-readable format without a dependency cycle;
// engine::Json remains the same type via this alias.
#pragma once

#include "pmtree/util/json.hpp"

namespace pmtree::engine {

using Json = ::pmtree::Json;

}  // namespace pmtree::engine
