// Log-linear histogram with bounded relative error, HDR-histogram style.
//
// Values below 2^sub_bits land in exact unit buckets; larger values share
// an octave split into 2^sub_bits linear sub-buckets, so every bucket's
// width is at most value / 2^sub_bits and any reported quantile is within
// a (1 + 2^-sub_bits) factor of the true sample quantile. This is the
// standard latency-histogram design (HdrHistogram, Prometheus native
// histograms): O(1) record, fixed memory independent of sample count, and
// mergeable — which is what the cycle engine needs to track per-access
// latency and per-module queue depth over millions of cycles.
#pragma once

#include <cstdint>
#include <vector>

namespace pmtree::engine {

class Histogram {
 public:
  /// `sub_bits` linear sub-buckets per octave (relative error 2^-sub_bits).
  /// Default 1/32 ≈ 3.1% worst-case quantile error.
  explicit Histogram(std::uint32_t sub_bits = 5);

  void record(std::uint64_t value) { record(value, 1); }
  /// Records `count` observations of `value` at once (bucket restore path).
  void record(std::uint64_t value, std::uint64_t count);

  /// Merges another histogram recorded with the same sub_bits.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Running sum of samples, saturating at max-uint64 instead of wrapping
  /// (mean() turns pessimistic rather than nonsensical on overflow).
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Exact (not bucketed) extremes; min is max-uint64 when empty, max is 0.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint32_t sub_bits() const noexcept { return sub_bits_; }

  /// Value v with P(sample <= v) >= q: the upper edge of the bucket holding
  /// the ceil(q * count)-th smallest sample. Guaranteed to be >= the true
  /// sample quantile and <= true * (1 + 2^-sub_bits). q is clamped to
  /// [0, 1]; q = 0 and q = 1 report the exact tracked min/max rather than
  /// a bucket edge. Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t value_at_quantile(double q) const;

  /// Convenience percentiles.
  [[nodiscard]] std::uint64_t p50() const { return value_at_quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() const { return value_at_quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const { return value_at_quantile(0.99); }

  /// One populated bucket: all samples in (lower, upper] — except bucket 0
  /// which is exactly value 0 — reported at the upper edge.
  struct Bucket {
    std::uint64_t upper = 0;  ///< inclusive upper edge (representative)
    std::uint64_t count = 0;
  };
  /// Populated buckets in increasing value order (JSON export / rebuild).
  [[nodiscard]] std::vector<Bucket> buckets() const;

  /// Rebuilds a histogram from an exported bucket list plus the exact
  /// extremes/sum the snapshot carries, so a restored histogram reports
  /// identical count/min/max/sum and quantiles. Used by
  /// MetricsRegistry::from_json.
  [[nodiscard]] static Histogram restore(std::uint32_t sub_bits,
                                         const std::vector<Bucket>& buckets,
                                         std::uint64_t min, std::uint64_t max,
                                         std::uint64_t sum);

 private:
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const noexcept;
  [[nodiscard]] std::uint64_t bucket_upper(std::size_t index) const noexcept;

  std::uint32_t sub_bits_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_;
  std::uint64_t max_ = 0;
};

}  // namespace pmtree::engine
