// ReferenceEngine: the frozen PR-1 scalar cycle loop.
//
// When the CycleEngine hot loop was rebuilt as an event-driven core
// (flat arena queues, active-module worklist, bulk cycle skipping —
// DESIGN.md §8), the original implementation was kept verbatim under this
// name. It burns O(modules) per cycle on std::deque scans and histogram
// sampling, which makes it useless at scale but ideal as an oracle: its
// semantics are obviously the paper's service model, one line per rule.
//
// Two consumers:
//   * tests/test_engine_event_core.cpp holds the event-driven core to
//     bit-identical trajectories (records, served counts, high-water
//     marks, busy cycles, histograms) on randomized workload/schedule
//     pairs across every template family;
//   * bench_e18_engine_throughput reports the event core's cycles/sec and
//     requests/sec as multiples of this baseline.
//
// Do not optimize this file; its only job is to stay the seed.
#pragma once

#include "pmtree/engine/engine.hpp"

namespace pmtree::engine {

class ReferenceEngine {
 public:
  explicit ReferenceEngine(const TreeMapping& mapping) : mapping_(mapping) {}

  /// The PR-1 `CycleEngine::run` loop, metrics plumbing removed. Depth
  /// sampling is always per-busy-cycle (the seed had no sampling knobs).
  [[nodiscard]] EngineResult run(const Workload& workload,
                                 const ArrivalSchedule& schedule) const;

  /// The same scalar loop under a fault schedule (fault/plan.hpp): the
  /// oracle the event core's degraded path is differentially tested
  /// against. The fault-free run() above stays byte-for-byte the seed;
  /// this overload lives beside it rather than inside it.
  [[nodiscard]] EngineResult run(const Workload& workload,
                                 const ArrivalSchedule& schedule,
                                 const fault::FaultPlan& plan) const;

 private:
  const TreeMapping& mapping_;
};

}  // namespace pmtree::engine
