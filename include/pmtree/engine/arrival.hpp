// Arrival schedules: when each access of a workload enters the engine.
//
// The paper's two cost models are the endpoints of an arrival policy:
// all-at-once arrivals reproduce BatchScheduler's makespan (every request
// queued at cycle 0, busiest module drains last) and serialized arrivals
// reproduce MemorySystem's per-access rounds (one access in flight at a
// time). Open-loop fixed-rate and bursty schedules sit between the two
// and are where queueing behaviour — depth excursions, tail latency —
// actually emerges; they model a front-end admitting user requests at a
// target throughput. Explicit schedules carry one caller-chosen arrival
// cycle per access: the serve layer uses them to feed dynamically formed
// batches (each dispatched at its admission tick) through the engine.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pmtree::engine {

class ArrivalSchedule {
 public:
  enum class Kind : std::uint8_t {
    kAllAtOnce,   ///< every access arrives at cycle 0 (batch)
    kFixedRate,   ///< access i arrives at cycle i * period
    kBursty,      ///< bursts of `burst` accesses every `gap` cycles
    kSerialized,  ///< closed loop: access i arrives when i-1 completes
    kExplicit,    ///< access i arrives at a caller-supplied cycle
  };

  [[nodiscard]] static ArrivalSchedule all_at_once() {
    return ArrivalSchedule(Kind::kAllAtOnce, 0, 0);
  }
  /// `period` cycles between consecutive arrivals; period 0 degenerates
  /// to all-at-once.
  [[nodiscard]] static ArrivalSchedule fixed_rate(std::uint64_t period) {
    return ArrivalSchedule(Kind::kFixedRate, period, 0);
  }
  /// `burst` accesses (>= 1) arrive together every `gap` cycles. Degenerate
  /// parameters follow the conventions of the other factories: burst 0 is
  /// normalized to 1, and gap 0 degenerates to all-at-once (every burst is
  /// due at cycle 0) exactly as fixed_rate(0) does.
  [[nodiscard]] static ArrivalSchedule bursty(std::uint64_t burst,
                                              std::uint64_t gap) {
    return ArrivalSchedule(Kind::kBursty, gap, burst == 0 ? 1 : burst);
  }
  [[nodiscard]] static ArrivalSchedule serialized() {
    return ArrivalSchedule(Kind::kSerialized, 0, 0);
  }
  /// Access i arrives at cycles[i]. Preconditions: `cycles` is
  /// nondecreasing (the engine admits accesses in index order) and covers
  /// every access of the workload it is run with (cycles.size() >= n).
  [[nodiscard]] static ArrivalSchedule explicit_cycles(
      std::vector<std::uint64_t> cycles) {
    ArrivalSchedule schedule(Kind::kExplicit, 0, 0);
    schedule.cycles_ = std::move(cycles);
    for (std::size_t i = 1; i < schedule.cycles_.size(); ++i) {
      assert(schedule.cycles_[i - 1] <= schedule.cycles_[i]);
    }
    return schedule;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool closed_loop() const noexcept {
    return kind_ == Kind::kSerialized;
  }

  /// Arrival cycle of access `i` for open-loop kinds. Preconditions:
  /// !closed_loop() (serialized arrivals depend on completions), and for
  /// explicit schedules i < cycles.size().
  [[nodiscard]] std::uint64_t arrival_cycle(std::uint64_t i) const noexcept {
    switch (kind_) {
      case Kind::kAllAtOnce: return 0;
      case Kind::kFixedRate: return i * period_;
      case Kind::kBursty: return (i / burst_) * period_;
      case Kind::kExplicit: return cycles_[i];
      case Kind::kSerialized: break;
    }
    return 0;
  }

  [[nodiscard]] std::string name() const;

 private:
  ArrivalSchedule(Kind kind, std::uint64_t period, std::uint64_t burst)
      : kind_(kind), period_(period), burst_(burst) {}

  Kind kind_;
  std::uint64_t period_;  ///< fixed-rate period, or bursty inter-burst gap
  std::uint64_t burst_;   ///< bursty: accesses per burst
  std::vector<std::uint64_t> cycles_;  ///< explicit: per-access arrivals
};

}  // namespace pmtree::engine
