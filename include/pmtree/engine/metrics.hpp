// MetricsRegistry: named counters, gauges and histograms for the engine,
// benches and examples.
//
// The registry is the single sink the cycle engine writes its
// observability data into, so a bench can hand one registry to several
// engine runs (prefixing names per run) and export everything as one JSON
// snapshot. Three instrument kinds, mirroring the usual Prometheus/
// OpenTelemetry split:
//
//   * Counter — monotone uint64 (requests served, cycles executed);
//   * Gauge   — last-write int64 value plus a high-water mark (queue
//               depth, in-flight accesses);
//   * Histogram — log-linear distribution with percentiles (latency,
//               per-cycle module occupancy); see histogram.hpp.
//
// Instruments are created on first touch and owned by the registry;
// references stay valid for the registry's lifetime (std::map nodes are
// stable). Export order is name-sorted, hence deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "pmtree/engine/histogram.hpp"
#include "pmtree/engine/json.hpp"

namespace pmtree::engine {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_ = value;
    high_water_ = value > high_water_ ? value : high_water_;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  /// Largest value ever set (0 if never set above 0).
  [[nodiscard]] std::int64_t high_water() const noexcept { return high_water_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

class MetricsRegistry {
 public:
  /// Instrument accessors: create on first use, then return the existing
  /// instrument. A name refers to one kind only; re-using a counter name
  /// as a gauge is a programming error (asserted in debug builds).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::uint32_t sub_bits = 5);

  /// Read-only lookups; nullptr when the instrument does not exist.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Snapshot of every instrument:
  ///   {"counters": {name: value},
  ///    "gauges": {name: {"value": v, "high_water": h}},
  ///    "histograms": {name: {"count","min","max","mean","p50","p95",
  ///                          "p99","sub_bits","buckets":[[upper,count]...]}}}
  [[nodiscard]] Json to_json() const;

  /// Rebuilds a registry from a to_json() snapshot (counters and gauges
  /// exactly; histograms bucket-for-bucket, so quantiles are preserved).
  /// nullopt if `snapshot` does not have the expected shape.
  [[nodiscard]] static std::optional<MetricsRegistry> from_json(const Json& snapshot);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pmtree::engine
