// EngineSession: the stage-granular entry to the event-driven engine.
//
// CycleEngine::run is monolithic: given a whole workload it flattens the
// accesses, resolves every color through the mapping, then simulates the
// module queues to completion. The serve layer's staged pipeline
// (serve/pipeline.hpp) wants those phases split across stages and
// batches: color resolution happens per batch on a worker (SIMD gather,
// off the control plane), and execution happens per lane as resolved
// batches stream in. EngineSession is that split:
//
//   feed(access, arrival)            — resolve colors here, accumulate;
//   feed_resolved(colors, arrival)   — colors already resolved upstream;
//   drain()                          — simulate the accumulated prefix.
//
// drain() hands the accumulated (first, colors, arrivals) arrays to
// engine::detail::run_resolved — the SAME loop CycleEngine::run calls —
// so a session fed batch-by-batch returns an EngineResult bit-identical
// to one monolithic run over the same batches with
// ArrivalSchedule::explicit_cycles of the same arrivals. That identity is
// what lets the pipelined server keep the single-threaded tick loop as
// its frozen differential oracle (test_engine_session holds it directly).
//
// drain() is const and repeatable: each call replays the prefix fed so
// far from cycle 0. Replaying is the determinism anchor — a serving round
// that appends batches and drains again extends, never rewrites, the
// previous round's completions (later arrivals queue strictly behind).
// What the session never redoes is the expensive upstream half: nodes are
// not stored at all, and each batch's colors are resolved exactly once no
// matter how many rounds drain.
//
// Healthy path only: arrivals must be nondecreasing (open-loop explicit
// schedule) and options.faults must be null or empty — the degraded loop
// needs nodes for rerouting, so faulted serving stays on the monolithic
// entry.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/mapping/mapping.hpp"

namespace pmtree::engine {

class EngineSession {
 public:
  /// `mapping` must outlive the session. `options.faults` must be null or
  /// empty (asserted).
  explicit EngineSession(const TreeMapping& mapping,
                         const EngineOptions& options = {})
      : mapping_(mapping), options_(options) {
    assert(options_.faults == nullptr || options_.faults->empty());
  }

  /// Appends one access arriving at `arrival` (cycles, nondecreasing
  /// across feeds — asserted), resolving its colors through the mapping.
  void feed(std::span<const Node> access, std::uint64_t arrival) {
    const std::size_t base = colors_.size();
    colors_.resize(base + access.size());
    mapping_.color_of_batch(
        access, std::span<Color>(colors_.data() + base, access.size()));
    push(access.size(), arrival);
  }

  /// Same, with the colors already resolved upstream (the pipeline's
  /// resolve stage). `colors` must be the mapping's colors for the
  /// access's nodes, in order.
  void feed_resolved(std::span<const Color> colors, std::uint64_t arrival) {
    colors_.insert(colors_.end(), colors.begin(), colors.end());
    push(colors.size(), arrival);
  }

  /// Accesses fed so far. drain()'s records[i] is the i-th feed.
  [[nodiscard]] std::size_t accesses() const noexcept {
    return arrivals_.size();
  }

  /// Simulates the accumulated prefix from cycle 0 to completion.
  /// Bit-identical to CycleEngine::run over the same accesses with
  /// ArrivalSchedule::explicit_cycles(arrivals). Repeatable; feeding more
  /// and draining again extends the earlier result.
  [[nodiscard]] EngineResult drain() const {
    return detail::run_resolved(
        mapping_.num_modules(), first_, colors_,
        ArrivalSchedule::explicit_cycles(arrivals_), options_);
  }

  /// Forgets everything fed so far (a fresh run's sessions, without
  /// re-constructing — keeps capacity).
  void clear() {
    first_.assign(1, 0);
    colors_.clear();
    arrivals_.clear();
  }

  [[nodiscard]] const TreeMapping& mapping() const noexcept {
    return mapping_;
  }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

 private:
  void push(std::size_t requests, std::uint64_t arrival) {
    assert(arrivals_.empty() || arrivals_.back() <= arrival);
    (void)requests;
    first_.push_back(colors_.size());
    arrivals_.push_back(arrival);
  }

  const TreeMapping& mapping_;
  EngineOptions options_;
  std::vector<std::size_t> first_{0};  ///< first_[i] .. first_[i+1] slice
  std::vector<Color> colors_;          ///< flat resolved colors
  std::vector<std::uint64_t> arrivals_;
};

}  // namespace pmtree::engine
