// First real clients of the serve front-end: the dictionary and the
// range index from pmtree/apps, adapted to the Request/Response protocol.
//
// The apps compute *answers* (a found key, a range of keys) and report
// the node set each operation touches; the server simulates *when* that
// node set is fetched under contention. A client therefore splits an
// operation in two: submit_*() packages the accessed node set as a
// Request (remembering the operation keyed by seq), and join() matches a
// finished ServeReport back to the remembered operations, re-deriving
// each answer and pairing it with the response's timing — or with the
// shed/expired verdict, in which case the answer never materialized.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "pmtree/apps/dictionary.hpp"
#include "pmtree/apps/range_index.hpp"
#include "pmtree/serve/forest.hpp"
#include "pmtree/serve/request.hpp"
#include "pmtree/serve/server.hpp"

namespace pmtree::serve {

/// Dictionary lookups as serve requests: each search submits its
/// speculative root-to-leaf path (a P-template instance) as one request.
class DictionaryClient {
 public:
  /// `dictionary` must outlive the client. `client_id` is this client's
  /// stream id in the (client, seq) request identity.
  DictionaryClient(const Dictionary& dictionary, std::uint32_t client_id)
      : dictionary_(&dictionary), client_(client_id) {}

  /// Submits the parallel search for `key` at `submit_cycle`; returns the
  /// request's seq.
  std::uint64_t submit_search(Server& server, Dictionary::Key key,
                              std::uint64_t submit_cycle,
                              std::uint64_t deadline_cycles = 0);
  /// Same, against one tenant of a multi-tenant forest.
  std::uint64_t submit_search(Forest& forest, std::uint32_t tenant,
                              Dictionary::Key key, std::uint64_t submit_cycle,
                              std::uint64_t deadline_cycles = 0);

  struct Outcome {
    std::uint64_t seq = 0;
    Dictionary::Key key = 0;
    Response response;                ///< timing + terminal status
    Dictionary::SearchResult result;  ///< meaningful iff status == kOk
  };

  /// Joins `report` back to this client's submitted searches, in seq
  /// order. kOk outcomes carry the re-derived search answer.
  [[nodiscard]] std::vector<Outcome> join(const ServeReport& report) const;
  /// Joins one tenant's section of a forest report (the tenant this
  /// client submitted to).
  [[nodiscard]] std::vector<Outcome> join(const TenantReport& report) const;

  [[nodiscard]] std::uint32_t id() const noexcept { return client_; }
  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return keys_.size();
  }

 private:
  [[nodiscard]] std::vector<Outcome> join_responses(
      const std::vector<Response>& responses) const;

  const Dictionary* dictionary_;
  std::uint32_t client_;
  std::vector<Dictionary::Key> keys_;  ///< indexed by seq
};

/// Range queries as serve requests: each query submits its composite
/// C(D, c) cover (subtrees + boundary paths) as one request.
class RangeIndexClient {
 public:
  RangeIndexClient(const RangeIndex& index, std::uint32_t client_id)
      : index_(&index), client_(client_id) {}

  /// Submits the range query [lo, hi] at `submit_cycle`; returns its seq.
  std::uint64_t submit_query(Server& server, RangeIndex::Key lo,
                             RangeIndex::Key hi, std::uint64_t submit_cycle,
                             std::uint64_t deadline_cycles = 0);
  /// Same, against one tenant of a multi-tenant forest.
  std::uint64_t submit_query(Forest& forest, std::uint32_t tenant,
                             RangeIndex::Key lo, RangeIndex::Key hi,
                             std::uint64_t submit_cycle,
                             std::uint64_t deadline_cycles = 0);

  struct Outcome {
    std::uint64_t seq = 0;
    RangeIndex::Key lo = 0;
    RangeIndex::Key hi = 0;
    Response response;
    RangeIndex::QueryResult result;  ///< meaningful iff status == kOk
  };

  [[nodiscard]] std::vector<Outcome> join(const ServeReport& report) const;
  [[nodiscard]] std::vector<Outcome> join(const TenantReport& report) const;

  [[nodiscard]] std::uint32_t id() const noexcept { return client_; }
  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return ranges_.size();
  }

 private:
  [[nodiscard]] std::vector<Outcome> join_responses(
      const std::vector<Response>& responses) const;

  const RangeIndex* index_;
  std::uint32_t client_;
  std::vector<std::pair<RangeIndex::Key, RangeIndex::Key>> ranges_;
};

}  // namespace pmtree::serve
