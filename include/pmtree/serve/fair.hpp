// Fair sharing primitives for multi-tenant serving (DESIGN.md §13).
//
// A forest front-end divides two fixed resources among N tenants: the
// replica pool (how much parallel memory capacity each tenant's batches
// get) and the per-tick batch-formation budget (who gets to dispatch
// when everyone is backlogged). Both divisions reduce to the same
// primitive — apportion an integer total across weighted claimants with
// no systematic bias — plus a deficit-round-robin scheduler that turns
// the static weights into a per-tick service discipline with a bounded
// deviation from the weighted-fair ideal.
//
// Everything here is a pure function of its inputs (largest-remainder
// ties break toward the lower tenant id; DRR state advances only through
// explicit calls), so the forest's determinism contract extends through
// the fairness layer unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/util/json.hpp"

namespace pmtree::serve {

/// Largest-remainder apportionment of `total` integer units across
/// `weights` (Hamilton's method): unit i receives floor(total * w_i / W)
/// plus one of the leftover units, awarded by descending fractional
/// remainder with ties broken toward the lower index. Non-positive and
/// non-finite weights count as zero; if every weight is zero the split
/// is uniform. The result always sums to exactly `total`.
[[nodiscard]] std::vector<std::uint32_t> apportion(
    std::uint32_t total, const std::vector<double>& weights);

/// Static capacity plan: how the forest's replica pool is divided into
/// per-tenant engine lanes from the tenants' declared request rates.
/// Tenant i owns `lanes[i]` lanes starting at global lane `first_lane[i]`;
/// its batch k executes on lane first_lane[i] + (k mod lanes[i]). Lane
/// ranges are disjoint, so one tenant's degraded or overloaded lanes
/// never touch another tenant's completions.
struct CapacityPlan {
  std::vector<std::uint32_t> lanes;       ///< per tenant, always >= 1
  std::vector<std::uint32_t> first_lane;  ///< per tenant, contiguous ranges
  std::uint32_t total_lanes = 0;          ///< sum of lanes
  std::uint32_t requested_replicas = 0;   ///< the pool size asked for

  /// {"requested_replicas", "total_lanes", "tenants": [{lanes, first_lane}]}
  [[nodiscard]] Json to_json() const;
};

/// Plans the replica pool: `replicas` lanes are apportioned across the
/// tenants' declared `rates` (largest remainder), with every tenant
/// guaranteed at least one lane. A pool smaller than the tenant count is
/// grown to one lane per tenant — the plan records the originally
/// requested size, and the forest reports the oversubscription rather
/// than silently starving a tenant of memory capacity.
[[nodiscard]] CapacityPlan plan_capacity(const std::vector<double>& rates,
                                         std::uint32_t replicas);

/// Deficit round-robin over tenants, in payload nodes: each backlogged
/// tenant accrues `quantum * weight` node-credits per scheduler round
/// (one forest tick), spends them on the batches it cuts, and forfeits
/// any remaining balance when its queue empties — the classic DRR discipline
/// (Shreedhar & Varghese), with the packet size replaced by a batch's
/// pre-dedup node count. Over any backlogged interval a tenant's served
/// nodes deviate from its weighted share by at most one batch plus one
/// quantum, which is the bound the fairness suite asserts.
class DeficitRoundRobin {
 public:
  /// One weight per tenant; zero weights behave as 1. `quantum_nodes` is
  /// the per-round credit of a weight-1 tenant (0 behaves as 1).
  DeficitRoundRobin(std::vector<std::uint64_t> weights,
                    std::uint64_t quantum_nodes);

  /// Tenant i's per-round credit: quantum * weight.
  [[nodiscard]] std::uint64_t quantum(std::size_t i) const noexcept {
    return quanta_[i];
  }
  [[nodiscard]] std::uint64_t deficit(std::size_t i) const noexcept {
    return deficit_[i];
  }

  /// Begins tenant i's turn this round: accrues its quantum. Call once
  /// per round, only for backlogged tenants.
  void begin_turn(std::size_t i) { deficit_[i] += quanta_[i]; }

  /// Whether tenant i can afford a batch of `cost` nodes right now.
  [[nodiscard]] bool affords(std::size_t i, std::uint64_t cost) const noexcept {
    return deficit_[i] >= cost;
  }
  /// Spends `cost` node-credits (precondition: affords(i, cost)).
  void spend(std::size_t i, std::uint64_t cost) noexcept {
    deficit_[i] -= cost;
  }
  /// Tenant i's queue emptied: its unused credit is forfeited, so idle
  /// tenants cannot bank service for a later burst.
  void reset(std::size_t i) noexcept { deficit_[i] = 0; }

  [[nodiscard]] std::size_t tenants() const noexcept { return quanta_.size(); }

 private:
  std::vector<std::uint64_t> quanta_;
  std::vector<std::uint64_t> deficit_;
};

}  // namespace pmtree::serve
