// Request/Response vocabulary of the pmtree::serve front-end.
//
// A Request is one client operation against the tree: a node set to fetch
// in (at most) one parallel memory access — a point lookup (one node), a
// dictionary search path, a range query's composite cover. Requests carry
// a simulated submission cycle and an optional deadline budget; the server
// timestamps every later state transition on the same simulated clock, so
// a Response is a complete latency record: when the request was admitted,
// when its batch dispatched, and when the memory system finished it — or
// when admission control shed it / its deadline expired while it queued.
//
// Identity: (client, seq) names a request uniquely within one Server run.
// Determinism hangs off this: the server orders everything by
// (submit_cycle, client, seq), a pure function of the submitted set, so
// results never depend on which thread delivered which request first
// (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/tree/node.hpp"

namespace pmtree::serve {

enum class RequestStatus : std::uint8_t {
  kPending,  ///< not yet resolved (never appears in a finished report)
  kOk,       ///< batched, executed, completed
  kShed,     ///< rejected by admission control (queue full, kShed policy)
  kExpired,  ///< deadline elapsed while the request was still queued
};

[[nodiscard]] constexpr const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kShed: return "shed";
    case RequestStatus::kExpired: return "expired";
  }
  return "?";
}

/// What the request does to the tree. Reads fetch their node set; writes
/// additionally mutate the dynamic tree (ServerOptions::dyn) at the
/// batch-cut barrier, PALM-style: the write rides its search path through
/// admission/batching/execution like any read, and its structural effect
/// applies once, on the control plane, in canonical batch-member order —
/// so responses and mutation verdicts are bit-identical at any worker
/// count. Without a dyn binding, writes behave exactly as reads.
enum class RequestKind : std::uint8_t {
  kRead,    ///< fetch `nodes` only
  kInsert,  ///< make `target` live (its parent must be live at apply time)
  kErase,   ///< remove the live, childless, non-root `target`
};

[[nodiscard]] constexpr const char* to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::kRead: return "read";
    case RequestKind::kInsert: return "insert";
    case RequestKind::kErase: return "erase";
  }
  return "?";
}

struct Request {
  std::uint32_t client = 0;  ///< submitting client stream
  std::uint64_t seq = 0;     ///< per-client sequence number (caller-assigned)
  std::uint64_t submit_cycle = 0;    ///< simulated arrival time
  std::uint64_t deadline_cycles = 0; ///< latency budget; 0 = no deadline
  std::vector<Node> nodes;           ///< node set to fetch (may be empty)
  /// Write-request extension; defaults keep read-only traffic unchanged.
  RequestKind kind = RequestKind::kRead;
  Node target;                 ///< mutation coordinate (kInsert / kErase)
  std::int64_t payload = 0;    ///< opaque client payload riding the write
};

struct Response {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  RequestStatus status = RequestStatus::kPending;
  std::uint64_t submit_cycle = 0;
  std::uint64_t admitted_cycle = 0;    ///< tick admitted into the queue
  std::uint64_t dispatch_cycle = 0;    ///< tick its batch was formed (kOk)
  std::uint64_t completion_cycle = 0;  ///< served / shed / expired cycle
  std::uint64_t batch = 0;             ///< global batch id (valid iff kOk)
  /// Attempts beyond the first (RetryPolicy). The admitted/dispatch/batch
  /// stamps above describe the final attempt; earlier attempts' outcomes
  /// were discarded by the retry.
  std::uint32_t retries = 0;

  /// End-to-end simulated latency: resolution minus submission. For kOk
  /// this is queueing + batching wait + memory service; for kShed and
  /// kExpired it is how long the caller waited for the rejection.
  [[nodiscard]] std::uint64_t latency() const noexcept {
    return completion_cycle - submit_cycle;
  }
  /// Cycles spent queued before the batch dispatched (kOk only).
  [[nodiscard]] std::uint64_t queue_wait() const noexcept {
    return dispatch_cycle - submit_cycle;
  }
};

}  // namespace pmtree::serve
