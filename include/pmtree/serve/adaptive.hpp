// Runtime mapping selection for the serve loop (DESIGN.md §17).
//
// The paper's R10 trade-off (§4–§6) is the observation that COLOR and
// LABEL-TREE rank *differently* depending on the template mix: COLOR is
// optimal for subtrees and strong on composites, LABEL-TREE wins on some
// path/level-dominated mixes, and neither dominates. A deployment that
// fixes one of them at configuration time is betting on a workload it has
// not seen. This layer turns the choice into a measurement:
//
//   AdaptiveSelector — epoch controller, same skeleton as §15's
//     MigrationPlanner. Every cut batch it resolves the batch's deduped
//     node set through EVERY candidate mapping and scores each candidate
//     by the batch's peak per-module request count (the makespan of the
//     batch under the paper's one-request-per-module-per-cycle service
//     model — the quantity the engine's completion time is governed by).
//     Every `epoch_batches` batches it decays the scores and, when some
//     candidate strictly beats the incumbent, mints an AdaptiveMapping
//     (mapping/combinators.hpp) choosing it — at the epoch barrier,
//     exactly like MigrationPlanner mints MigratedMapping epochs.
//   AdaptiveEvent — the audit record of one epoch decision.
//
// Determinism contract (inherited verbatim from §15): the selector is
// driven only by the single-threaded control plane, in batch cut order;
// scores are integer sums of conflict peaks, decayed with integer shifts.
// Selector state is a pure function of the cut sequence, so the oracle
// tick loop and the staged pipeline make identical decisions and produce
// bit-identical responses at any worker count. Crucially the score is a
// *simulated* quantity: the real-memory backend (pmtree/mem) measures
// bandwidth but never feeds the decision path, so enabling it cannot
// perturb the selection (or the responses).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "pmtree/mapping/combinators.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

/// Epoch-based selection knobs. Disabled by default: `epoch_batches == 0`
/// (or no candidates) keeps every serve path byte-identical to the
/// static-mapping server.
struct AdaptivePolicy {
  /// Re-decide every this many cut batches. 0 disables adaptation.
  std::uint32_t epoch_batches = 0;
  /// The mappings on the table (not owned; each must outlive the run and
  /// color the server's tree with the server's module count). The
  /// server's own mapping serves until the first epoch decision; list it
  /// here too if it should stay eligible afterwards.
  std::vector<const TreeMapping*> candidates;
  /// Epoch decay: every candidate score loses s >> decay_shift at each
  /// epoch boundary (shift 1 ≈ half-life of one epoch). 0 forgets
  /// everything between epochs.
  std::uint32_t decay_shift = 1;

  [[nodiscard]] bool enabled() const noexcept {
    return epoch_batches > 0 && !candidates.empty();
  }
};

/// One epoch decision, for audit and metrics.
struct AdaptiveEvent {
  std::uint64_t epoch = 0;    ///< 1-based epoch ordinal
  std::uint64_t cycle = 0;    ///< control-plane cycle of the decision
  std::uint64_t batches = 0;  ///< cumulative batches observed so far
  std::vector<std::uint64_t> scores;  ///< decayed score per candidate
  std::size_t chosen = 0;             ///< winning candidate index
  bool switched = false;              ///< did the active mapping change?

  [[nodiscard]] Json to_json() const;
};

/// The epoch controller. One selector per server run (or per Forest
/// tenant); all calls come from the single-threaded control plane.
class AdaptiveSelector {
 public:
  /// `base` and every policy candidate must outlive the selector (and
  /// every mapping it mints). All candidates must share base's tree and
  /// module count (asserted).
  AdaptiveSelector(const TreeMapping& base, const AdaptivePolicy& policy);

  /// Folds one freshly cut batch (deduped nodes) into every candidate's
  /// score, in cut order, and re-decides when the policy's batch budget
  /// is reached. `cycle` is the control-plane tick that cut the batch
  /// (audit only — it never affects the decision).
  void observe(std::span<const Node> nodes, std::uint64_t cycle);

  /// The mapping batches cut *now* should resolve against: the base until
  /// the first switch, then the latest minted AdaptiveMapping. Pointers
  /// stay valid for the selector's lifetime (epochs live in a deque).
  [[nodiscard]] const TreeMapping& current() const noexcept {
    return epochs_.empty() ? base_ : static_cast<const TreeMapping&>(
                                         epochs_.back());
  }

  /// The candidate currently serving, or nullptr while the base still is
  /// (no epoch mapping minted yet — ties keep the base in place even when
  /// it is listed among the candidates).
  [[nodiscard]] const TreeMapping* active_candidate() const noexcept {
    return epochs_.empty() ? nullptr : active_;
  }
  [[nodiscard]] std::uint64_t epochs_planned() const noexcept {
    return epochs_planned_;
  }
  [[nodiscard]] std::uint64_t batches_observed() const noexcept {
    return batches_total_;
  }
  [[nodiscard]] const std::vector<AdaptiveEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::span<const std::uint64_t> scores() const noexcept {
    return scores_;
  }

  /// Metrics payload for ServeMetrics::set_adaptive: policy echo with
  /// candidate names, epoch/switch counters, the live scores, and the
  /// last few events (full event list stays in events()).
  [[nodiscard]] Json stats() const;

 private:
  void decide(std::uint64_t cycle);

  const TreeMapping& base_;
  AdaptivePolicy policy_;
  std::vector<std::uint64_t> scores_;      ///< one per candidate
  std::vector<Color> color_scratch_;
  std::vector<std::uint32_t> load_scratch_;  ///< per-module counts
  /// The mapping actually serving: &base_ until the first switch, then
  /// always one of policy_.candidates. Compared by pointer when deciding
  /// whether an epoch needs a new mint.
  const TreeMapping* active_ = nullptr;
  /// Epoch mapping snapshots. Deque: stable addresses — in-flight batch
  /// tokens hold raw pointers to their epoch's mapping across a round.
  std::deque<AdaptiveMapping> epochs_;
  std::vector<AdaptiveEvent> events_;
  std::uint32_t batches_since_decide_ = 0;
  std::uint64_t batches_total_ = 0;
  std::uint64_t epochs_planned_ = 0;
  std::uint64_t switches_ = 0;  ///< decisions that changed the mapping
};

}  // namespace pmtree::serve
