// Forest: multi-tenant serving with per-tenant SLO isolation
// (DESIGN.md §13).
//
// Server (server.hpp) fronts ONE tree/mapping. The forest generalizes to
// N tenants — each a tree + mapping + template mix (DictionaryClient /
// RangeIndexClient instances, or raw Request streams) — sharing one pool
// of engine replicas. The system questions change from "what latency
// does a stream observe" to "who gets the capacity when everyone wants
// it": fairness and isolation, not single-tenant makespan, are the
// correctness criteria (Eyraud-Dubois et al.; Marchal et al.).
//
//   tenant 0 ─submit─▶┐                         ┌─▶ lanes[0] × CycleEngine
//   tenant 1 ─submit─▶┤ canonical order ─▶ tick │      (tenant 0's mapping)
//      ...            │  per-tenant admission   ├─▶ lanes[1] × CycleEngine
//   tenant N ─submit─▶┘  DRR batch formation ───┘      (tenant 1's mapping)
//
// Four mechanisms implement the isolation story:
//
//   * admission quotas — every tenant keeps its own AdmissionController
//     (its own queue bound + overflow policy) and the forest adds a
//     shared global bound on total pending work. Each tenant holds a
//     reserved share of the global pool (apportioned by DRR weight);
//     beyond its reserve a tenant may borrow only while total occupancy
//     is under the bound. Running out of the *shared* pool always
//     blocks, never sheds: a shed verdict is attributable to the
//     tenant's own quota alone.
//   * weighted-fair batching — a deficit round-robin scheduler
//     (fair.hpp) meters BatchFormer: per tick each backlogged tenant
//     accrues quantum*weight node-credits and cuts due batches while it
//     can afford their pre-dedup node cost, so a saturating tenant's
//     batch share converges to its weight and cannot starve the rest.
//   * per-tenant metrics — every tenant gets its own ServeMetrics
//     section (prefix "forest.t<i>") plus a forest-level aggregate and a
//     JSON rollup with per-tenant batch shares.
//   * capacity planning — plan_capacity() statically apportions the
//     replica pool into per-tenant engine lanes from declared rates;
//     tenant i's batch k executes on its lane k mod lanes[i]. Lane
//     ranges are disjoint, so a tenant's FaultPlan (TenantOptions::
//     engine.faults) degrades only that tenant's lanes and mapping.
//
// The determinism contract is Server's, extended with canonical tenant
// ordering: requests sort by (submit_cycle, tenant, client, seq); every
// per-tick phase visits tenants in ascending id; DRR accrues quanta in
// that same order. The control plane is single-threaded; only lane
// execution parallelizes (workers == 1 is the oracle, any count is
// bit-identical — test_serve_forest drives ≥60 randomized multi-tenant
// configurations, with and without per-tenant fault plans, at 1/2/8
// workers).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/metrics.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/serve/admission.hpp"
#include "pmtree/serve/batch.hpp"
#include "pmtree/serve/fair.hpp"
#include "pmtree/serve/metrics.hpp"
#include "pmtree/serve/migration.hpp"
#include "pmtree/serve/pipeline.hpp"
#include "pmtree/serve/request.hpp"
#include "pmtree/serve/server.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

/// Per-tenant configuration. Everything defaults to the single-tenant
/// Server's knobs; `rate` and `weight` are the two fairness dials.
struct TenantOptions {
  /// Display name for metrics/reports; "" defaults to "t<id>".
  std::string name;
  /// Declared offered load (relative units), consumed by the static
  /// capacity planner: lane counts are apportioned by rate.
  double rate = 1.0;
  /// Deficit-round-robin weight (relative batch share under saturation).
  /// 0 behaves as 1.
  std::uint64_t weight = 1;
  /// The tenant's own admission quota: queue bound + overflow policy.
  AdmissionOptions admission;
  BatchPolicy batch;
  RetryPolicy retry;
  /// Per-tenant engine knobs; `engine.faults` injects a fault schedule
  /// into THIS tenant's lanes only — other tenants' mappings and
  /// completions are untouched by construction.
  engine::EngineOptions engine;
  /// Per-tenant skew-adaptive remapping (migration.hpp); same contract as
  /// ServerOptions::migration, scoped to this tenant's lanes and mapping.
  /// A tenant carrying a fault plan keeps its static mapping regardless.
  MigrationPolicy migration;
  /// Per-tenant adaptive mapping selection (adaptive.hpp); same contract
  /// as ServerOptions::adaptive, scoped to this tenant's lanes and
  /// mapping — each tenant resolves the R10 trade-off against its own
  /// traffic. Mutually exclusive with this tenant's migration; a tenant
  /// carrying a fault plan keeps its static mapping regardless.
  AdaptivePolicy adaptive;
  /// Per-tenant real-memory arenas (mem/arena.hpp); same contract as
  /// ServerOptions::memory — observation only, totals land in
  /// TenantReport::memory and the tenant's "memory" metrics section.
  const mem::MemoryBackend* memory = nullptr;
};

struct ForestOptions {
  /// Admission tick period in engine cycles (0 behaves as 1), shared by
  /// all tenants — the forest runs one control-plane clock.
  std::uint64_t tick_cycles = 4;
  /// Engine replica pool to divide among tenants (grown to >= 1 lane per
  /// tenant; see plan_capacity).
  std::uint32_t replicas = 1;
  /// Worker threads for lane execution (0 = hardware concurrency).
  /// Affects wall-clock only; results are bit-identical at any count.
  unsigned workers = 1;
  /// Shared bound on total admitted-but-unbatched requests across all
  /// tenants; 0 disables the global cap. Each tenant holds a reserved
  /// share (apportioned by weight, at least 1 — the bound is grown to
  /// the tenant count if smaller); the rest is borrowable while total
  /// occupancy stays under the bound. Pool exhaustion blocks, never
  /// sheds.
  std::size_t global_queue_bound = 0;
  /// Node-credits a weight-1 tenant accrues per tick (0 behaves as 1).
  std::uint64_t drr_quantum_nodes = 32;
  /// Staged pipeline execution (pipeline.hpp); same contract as
  /// ServerOptions::pipeline. Forests where any tenant carries a fault
  /// plan always take the oracle path.
  PipelineOptions pipeline;
};

/// One tenant's view of a finished run: responses in canonical
/// (submit_cycle, client, seq) order, batches in dispatch order, and the
/// tenant's own metrics section.
struct TenantReport {
  std::string name;
  std::vector<Response> responses;
  std::vector<FormedBatch> batches;      ///< ids are tenant-local
  std::vector<engine::EngineResult> lanes;  ///< per assigned lane
  std::uint64_t served_nodes = 0;        ///< pre-dedup nodes dispatched
  /// Real-memory traffic over this tenant's cut batches; all-zero unless
  /// TenantOptions::memory was set.
  mem::TouchStats memory;
  Json metrics;                          ///< this tenant's ServeMetrics

  [[nodiscard]] std::uint64_t count(RequestStatus status) const noexcept;
};

/// Everything one Forest::run observed.
struct ForestReport {
  std::vector<TenantReport> tenants;
  CapacityPlan plan;
  std::uint64_t ticks = 0;
  std::uint64_t rounds = 0;
  std::uint64_t final_cycle = 0;
  /// Rollup: {"forest": aggregate summary, "tenants": [per-tenant rows
  /// with weight/lanes/reserve/batch_share + metrics], "plan": ...}.
  Json metrics;

  [[nodiscard]] std::uint64_t count(RequestStatus status) const noexcept;
  [[nodiscard]] std::uint64_t total_requests() const noexcept;

  /// Full report as JSON: the rollup plus per-tenant response tables.
  [[nodiscard]] Json to_json() const;
};

class Forest {
 public:
  explicit Forest(ForestOptions options = {});

  /// Registers a tenant; returns its id (dense, in registration order).
  /// `mapping` must outlive the forest. Tenants must be registered
  /// before the first submit()/run().
  std::uint32_t add_tenant(const TreeMapping& mapping,
                           TenantOptions options = {});

  /// Thread-safe MPSC submission to one tenant; callable concurrently
  /// from any number of client threads. (client, seq) must be unique per
  /// tenant per run.
  void submit(std::uint32_t tenant, Request request);
  void submit(std::uint32_t tenant, std::vector<Request> requests);

  /// Drains every submitted request to a terminal status and returns the
  /// full report. Quiesce first (no concurrent submit). May be called
  /// repeatedly; each run consumes the requests submitted since the
  /// previous one.
  [[nodiscard]] ForestReport run();

  [[nodiscard]] const ForestOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::uint32_t tenant_count() const noexcept {
    return static_cast<std::uint32_t>(tenants_.size());
  }
  [[nodiscard]] const TenantOptions& tenant_options(std::uint32_t id) const {
    return tenants_[id].options;
  }
  /// The static capacity plan (fixed once tenants are registered).
  [[nodiscard]] const CapacityPlan& plan();
  /// Registry holding forest.* and forest.t<i>.* instruments, cumulative
  /// across run() calls.
  [[nodiscard]] const engine::MetricsRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct Submitted {
    std::uint32_t tenant = 0;
    Request request;
  };
  struct Inbox {
    std::mutex mutex;
    std::vector<Submitted> requests;
  };
  struct Tenant {
    const TreeMapping* mapping = nullptr;
    TenantOptions options;
  };

  void ensure_plan();
  [[nodiscard]] std::vector<Submitted> drain_inboxes();
  /// Staged-pipeline twin of run() (defined in pipeline.cpp); dispatched
  /// to when options_.pipeline.enabled() and no tenant has a fault plan.
  [[nodiscard]] ForestReport run_pipeline();

  ForestOptions options_;
  std::vector<Tenant> tenants_;
  CapacityPlan plan_;
  bool planned_ = false;
  engine::MetricsRegistry registry_;
  std::array<Inbox, kStripes> inboxes_;
  /// Lazily built on the first pipelined run (one lane per capacity-plan
  /// lane), then reused across run() calls.
  std::unique_ptr<StagedRunner> runner_;
};

}  // namespace pmtree::serve
