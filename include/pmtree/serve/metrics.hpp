// ServeMetrics: the SLO-facing observability layer of pmtree::serve.
//
// A serving front-end is judged by its tail: p99/p999 end-to-end latency,
// how much load it shed, how many deadlines it blew, how full its queues
// ran. ServeMetrics records exactly that view on top of engine::MetricsRegistry
// — the same instrument kinds (Counter/Gauge/Histogram) the cycle engine
// uses, under a caller-chosen prefix, so one registry can hold a whole
// bench run (server + per-replica engine instruments) and export a single
// deterministic JSON snapshot.
//
// Instruments (all under `<prefix>.`):
//   counters  submitted, admitted, blocked, promoted, completed, shed,
//             expired, batches, batched_requests, requested_nodes,
//             batched_nodes, coalesced_nodes, ticks
//   gauges    queue_depth, blocked_depth (high-water = worst backlog)
//   histograms latency (end-to-end, kOk), queue_wait (submit → dispatch),
//             batch_nodes (deduped nodes per batch), batch_requests
//             (members per batch)
//
// summary() distills the SLO view: p50/p95/p99/p999 latency, counters,
// mean batch occupancy — the JSON object ServeReport carries and
// bench_e19 writes per configuration.
#pragma once

#include <cstdint>
#include <string>

#include "pmtree/engine/metrics.hpp"
#include "pmtree/serve/batch.hpp"
#include "pmtree/serve/request.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

class ServeMetrics {
 public:
  /// Instruments are created in `registry` on first touch; the registry
  /// must outlive this object.
  explicit ServeMetrics(engine::MetricsRegistry& registry,
                        std::string prefix = "serve");

  void on_submitted(std::uint64_t count) { submitted_->add(count); }
  void on_admitted() { admitted_->add(); }
  void on_blocked() { blocked_->add(); }
  void on_promoted(std::uint64_t count) { promoted_->add(count); }
  void on_shed() { shed_->add(); }
  void on_expired(std::uint64_t count) { expired_->add(count); }
  void on_tick(std::size_t pending, std::size_t blocked_depth);
  void on_batch(const FormedBatch& batch);
  /// Retry attempts issued this round (RetryPolicy timeouts).
  void on_retried(std::uint64_t count) { retries_->add(count); }
  /// Fault counters folded out of the replica engine runs: requests
  /// rerouted off fail-stopped modules, module-cycles lost to slowdowns.
  void on_replica_faults(std::uint64_t rerouted, std::uint64_t stalled) {
    rerouted_requests_->add(rerouted);
    stalled_cycles_->add(stalled);
  }
  /// Terminal kOk observation: completes the latency / queue-wait view.
  /// Responses that needed retries also land in the fault-attributed
  /// latency histogram — the tail the fault injection bought.
  void on_completed(const Response& response);

  /// Attaches the staged pipeline's stage-attribution snapshot
  /// (StagedRunner::stats — stage nanoseconds, barrier wait, batches in
  /// flight, active SIMD kernel). summary() emits it as a "pipeline"
  /// section only when set, so oracle runs keep their exact JSON shape.
  void set_pipeline(Json stats) { pipeline_ = std::move(stats); }

  /// Attaches the skew-adaptive planner's snapshot
  /// (MigrationPlanner::stats — epoch/move counters, per-module heat
  /// prediction, recent events). Emitted as a "migration" section only
  /// when set — static-mapping runs keep their exact JSON shape.
  void set_migration(Json stats) { migration_ = std::move(stats); }

  /// Attaches the dynamic-tree snapshot (mutation counters, live size,
  /// incremental-colorer work). Emitted as a "dyn" section only when set
  /// — read-only runs keep their exact JSON shape.
  void set_dyn(Json stats) { dyn_ = std::move(stats); }

  /// Attaches the adaptive-selection snapshot (AdaptiveSelector::stats —
  /// candidate scores, epoch/switch counters, recent decisions). Emitted
  /// as an "adaptive" section only when set — static-mapping runs keep
  /// their exact JSON shape.
  void set_adaptive(Json stats) { adaptive_ = std::move(stats); }

  /// Attaches the real-memory traffic snapshot (MemoryBackend::stats —
  /// arena layout facts plus the run's touched nodes/bytes/checksum).
  /// Emitted as a "memory" section only when set — accounting-only runs
  /// keep their exact JSON shape.
  void set_memory(Json stats) { memory_ = std::move(stats); }

  /// SLO snapshot:
  ///   {"latency": {"count","p50","p95","p99","p999","mean","max"},
  ///    "queue_wait": {...same shape...},
  ///    "batches": {"count","mean_requests","mean_nodes","max_nodes",
  ///                "coalesced_nodes"},
  ///    "counters": {submitted, admitted, ...},
  ///    "queues": {"pending_high_water","blocked_high_water"},
  ///    "faults": {"retries","rerouted_requests","stalled_cycles",
  ///               "retried_latency": {...histogram...}}}
  [[nodiscard]] Json summary() const;

  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

 private:
  std::string prefix_;
  engine::Counter* submitted_;
  engine::Counter* admitted_;
  engine::Counter* blocked_;
  engine::Counter* promoted_;
  engine::Counter* completed_;
  engine::Counter* shed_;
  engine::Counter* expired_;
  engine::Counter* batches_;
  engine::Counter* batched_requests_;
  engine::Counter* requested_nodes_;
  engine::Counter* batched_nodes_;
  engine::Counter* coalesced_nodes_;
  engine::Counter* ticks_;
  engine::Counter* retries_;
  engine::Counter* rerouted_requests_;
  engine::Counter* stalled_cycles_;
  engine::Gauge* queue_depth_;
  engine::Gauge* blocked_depth_;
  engine::Histogram* latency_;
  engine::Histogram* queue_wait_;
  engine::Histogram* batch_nodes_;
  engine::Histogram* batch_requests_;
  engine::Histogram* retried_latency_;
  Json pipeline_;   ///< null unless set_pipeline() was called
  Json migration_;  ///< null unless set_migration() was called
  Json dyn_;        ///< null unless set_dyn() was called
  Json adaptive_;   ///< null unless set_adaptive() was called
  Json memory_;     ///< null unless set_memory() was called
};

}  // namespace pmtree::serve
