// PALM-style batched mutations for the serve front-end (DESIGN.md §16).
//
// Write requests (RequestKind::kInsert / kErase) flow through the same
// admission -> batching -> replica pipeline as reads; what distinguishes
// them is the *apply barrier*. When the control plane cuts a batch, the
// batch's writers are applied to the bound DynamicTree right there — in
// canonical (client, seq) member order, after exact-duplicate dedup —
// and the IncrementalColorer is touched with the batch's node set plus
// every applied target, so by the time any worker resolves the batch the
// colors it needs are published. The barrier is a pure function of the
// cut sequence, which both the oracle loop and the staged pipeline mint
// identically, so mutation verdicts and responses stay bit-identical at
// 1/2/8 workers and across both execution paths.
//
// Conflict scheduling: reads in the same composite instance observe the
// tree as of the batch cut (their node sets were planned against it);
// writers then apply in canonical order, so a write-write conflict
// resolves deterministically — the canonically-first writer wins and the
// loser's verdict (kOccupied, kNotLive, kParentMissing, ...) is recorded
// in the mutation log rather than silently dropped. A request whose
// mutation is rejected still completes kOk as a *request* (it was
// admitted, batched and executed); clients reconcile outcomes from the
// log, mirroring how the read clients re-derive answers post-run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmtree/dyn/dynamic_tree.hpp"
#include "pmtree/dyn/incremental.hpp"
#include "pmtree/serve/batch.hpp"
#include "pmtree/serve/request.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

/// Binds a Server to a dynamic tree. When `tree` is set the server runs
/// in read-write mode: Insert/Erase requests mutate it at the batch-cut
/// barrier and `colorer` (required; it must be the server's mapping or
/// share its color function) is touched so workers find every color
/// published. Mutually exclusive with migration; faulted configurations
/// run the mutation barrier on the oracle path like everything else.
struct DynBinding {
  dyn::DynamicTree* tree = nullptr;
  dyn::IncrementalColorer* colorer = nullptr;
  /// E24's strawman baseline: after every batch with writers, drop the
  /// memoized coloring entirely and re-touch the whole live set — the
  /// full-recolor-per-epoch cost the incremental scheme avoids. Colors
  /// are identical either way (they are coordinate-pure); only the work
  /// differs.
  bool recolor_from_scratch = false;

  [[nodiscard]] bool enabled() const noexcept { return tree != nullptr; }
};

/// One applied (or rejected) mutation, in apply order — the deterministic
/// log clients reconcile against and the differential tests compare
/// across worker counts and execution paths.
struct MutationRecord {
  std::uint64_t batch = 0;          ///< batch whose barrier applied it
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  RequestKind kind = RequestKind::kRead;
  Node target;
  std::int64_t payload = 0;
  dyn::DynStatus status = dyn::DynStatus::kOk;
  std::uint64_t applied_cycle = 0;  ///< the cut tick (the barrier's clock)
};

/// The apply barrier: runs `batch`'s writers against the binding at cut
/// time. `applied` has one flag per canonical request index; a request's
/// mutation applies exactly once even if retries re-dispatch it in a
/// later batch. Appends one MutationRecord per writer (including deduped
/// and rejected ones) to `log` and touches the colorer with the batch's
/// node set and every applied insert target. Control-plane only.
void apply_batch_mutations(const FormedBatch& batch,
                           std::span<const Request> requests,
                           const DynBinding& binding, std::uint64_t cycle,
                           std::vector<char>& applied,
                           std::vector<MutationRecord>& log);

/// End-of-run snapshot for ServeMetrics::set_dyn: live-set size / version
/// of the tree, per-status mutation counts, and the colorer's work
/// counters (nodes_colored / touches — the incremental-vs-rebuild cost
/// E24 charts). Pure accounting; identical across execution paths.
[[nodiscard]] Json dyn_stats(const DynBinding& binding,
                             const std::vector<MutationRecord>& log);

}  // namespace pmtree::serve
