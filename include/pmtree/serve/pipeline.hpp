// StagedRunner: the PALM-style staged execution pipeline behind
// Server/Forest (DESIGN.md §14).
//
// The single-threaded serving loop does everything per batch in sequence:
// cut → coalesce → (later) flatten + color-resolve + simulate, with every
// round's replica execution rebuilding its whole cumulative workload from
// scratch. The staged pipeline splits that work so consecutive batches
// occupy different stages concurrently, PALM-style (batch-parallel trees
// synchronize on per-batch barriers instead of per-node locks):
//
//   intake/batching (control) ─▶ resolve (coalesce + SIMD color gather +
//   conflict histogram, any worker) ─▶ execute (append to the owning
//   lane's EngineSession) ─▶ [round barrier] drain (simulate lanes) ─▶
//   reply (control assembles responses in batch-id order)
//
// Determinism is by construction, not by luck:
//
//   * Stage handoff is SPSC rings of batch tokens. The control plane is
//     the only producer; each ring has exactly one consumer. Token i is
//     resolved by worker i mod P (any order is fine — resolution is a
//     pure function of the batch), but lane rings are drained strictly
//     front-first, and a lane token is consumed only once its `ready`
//     flag is set. Every lane therefore observes its batches in exactly
//     the canonical cut order at ANY worker count.
//   * Execution is EngineSession (engine/session.hpp): a lane's result is
//     a pure function of the (colors, arrival) sequence fed to it, and
//     drain() calls the same engine::detail::run_resolved loop the
//     monolithic CycleEngine uses. The frozen single-threaded tick loop
//     remains in server.cpp/forest.cpp as the differential oracle;
//     test_serve_pipeline holds 1/2/8-worker runs bit-identical to it.
//   * Worker count moves wall-clock only. Nothing any worker computes
//     feeds back into control-plane decisions mid-round; the round
//     barrier (close_round) is the only synchronization point at which
//     control reads worker output.
//
// Stage-attribution counters (nanoseconds per stage, barrier wait,
// batches in flight) accumulate in the runner and export via stats() into
// ServeMetrics' "pipeline" section — the only part of a pipelined report
// that is not bit-identical across worker counts, since it measures wall
// time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/session.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/mem/arena.hpp"
#include "pmtree/serve/batch.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

struct PipelineOptions {
  /// Pipeline worker threads. 0 keeps the classic single-threaded tick
  /// loop (the oracle); any value >= 1 routes run() through the staged
  /// pipeline. Results are bit-identical at every setting — the count
  /// only changes wall-clock (workers == 1 is the pipeline's own
  /// sequential mode, still byte-equal to the oracle).
  unsigned workers = 0;
  /// Capacity of each handoff ring, in batch tokens (rounded up to a
  /// power of two, minimum 2). Bounds how much of a round the consumers
  /// see before the round barrier: once a ring fills, further cuts park
  /// in a control-plane overflow queue and are pumped into the ring as
  /// the consumer catches up — the Marchal/Sinnen/Vivien
  /// memory-vs-makespan dial, without ever blocking the tick loop.
  std::size_t queue_depth = 256;

  [[nodiscard]] bool enabled() const noexcept { return workers > 0; }
};

/// One batch riding the pipeline. Created by the control plane at cut
/// time, filled by the resolve stage, consumed by the execute stage and
/// finally by reply-side assembly. Tokens live in a deque owned by the
/// runner — stable addresses, so stages pass raw pointers.
struct BatchToken {
  FormedBatch batch;            ///< nodes raw at cut; coalesced by resolve
  std::uint32_t lane = 0;       ///< global execution lane
  std::uint32_t tenant = 0;     ///< forest tenant id (0 for Server)
  /// Per-batch mapping override (skew-adaptive migration): when set, the
  /// resolve stage colors against this mapping instead of the lane's.
  /// Points at a MigrationPlanner epoch snapshot with the same module
  /// count as the lane mapping; must outlive the round. nullptr keeps
  /// the lane mapping (the static default).
  const TreeMapping* mapping = nullptr;
  std::vector<Color> colors;    ///< resolved colors of batch.nodes
  std::uint32_t max_conflicts = 0;  ///< peak per-module load in the batch
  /// Real-memory traffic of this batch (lane backend set): the resolve
  /// worker loads the batch's payloads from the arenas right after the
  /// coalesce, and assembly folds these order-invariant totals into the
  /// report — identical to the oracle's control-plane touches.
  mem::TouchStats mem;
  /// Resolve -> execute handoff: set (release) once colors/decomposition
  /// are final; lane owners consume tokens only after observing it
  /// (acquire). This is the per-token ordering edge that keeps lane feeds
  /// canonical while resolution itself runs out of order.
  std::atomic<bool> ready{false};
};

/// Single-producer single-consumer ring of token pointers. The producer
/// is always the control plane; the consumer is one worker. Lock-free;
/// the runner's condvar only parks/wakes threads, it never guards ring
/// state.
class TokenRing {
 public:
  explicit TokenRing(std::size_t capacity);

  /// Vector-growth support only — rings are moved exclusively during
  /// single-threaded runner construction, never while threads run.
  TokenRing(TokenRing&& other) noexcept
      : slots_(std::move(other.slots_)),
        mask_(other.mask_),
        head_(other.head_.load(std::memory_order_relaxed)),
        tail_(other.tail_.load(std::memory_order_relaxed)) {}

  /// Producer side. False when full (caller waits on the runner signal).
  bool push(BatchToken* token) noexcept;
  /// Consumer side: front token, or nullptr when empty.
  [[nodiscard]] BatchToken* front() const noexcept;
  void pop() noexcept;

 private:
  std::vector<BatchToken*> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  ///< consumer cursor
  std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

/// One execution lane: a Server replica or a Forest tenant-lane. The
/// mapping/options pair is what the oracle's CycleEngine would run with.
struct LaneSpec {
  const TreeMapping* mapping = nullptr;
  engine::EngineOptions options;
  /// Optional real-memory backend (not owned; must outlive the runner).
  /// When set, the resolve stage touches each batch's payloads — genuine
  /// parallel loads from the per-module arenas — into BatchToken::mem.
  /// Observation only; resolution and execution are unaffected.
  const mem::MemoryBackend* memory = nullptr;
};

class StagedRunner {
 public:
  /// Spawns `options.workers` (>= 1) parked worker threads. Lane l is
  /// owned by worker l mod P; token i is resolved by worker i mod P.
  /// Mappings must outlive the runner. Every LaneSpec must be healthy
  /// (no fault plan) — faulted configurations stay on the oracle.
  StagedRunner(std::vector<LaneSpec> lanes, const PipelineOptions& options);
  ~StagedRunner();

  StagedRunner(const StagedRunner&) = delete;
  StagedRunner& operator=(const StagedRunner&) = delete;

  /// Starts a fresh run: forgets all fed batches and results. Stats
  /// accumulate across runs (like every other registry instrument).
  void begin_run();

  /// Hands one freshly cut batch to the pipeline (control plane only).
  /// Never blocks: full rings spill into per-ring overflow queues that
  /// the control plane pumps as consumers advance. `mapping` (optional)
  /// is the batch's epoch-mapping override — see BatchToken::mapping.
  void cut(FormedBatch batch, std::uint32_t lane, std::uint32_t tenant = 0,
           const TreeMapping* mapping = nullptr);

  /// Round barrier: waits until every cut batch is resolved, executed,
  /// and every lane's cumulative result is drained. After it returns,
  /// tokens() and result() are safe to read from the control plane.
  void close_round();

  /// This round's tokens in cut order (valid between close_round and
  /// next_round). Assembly moves the batches out. Token storage is
  /// pooled: begin_run()/next_round() reset the count but keep the
  /// BatchToken objects — and their vector capacities — for later cuts,
  /// so a long-lived runner stops allocating per batch.
  [[nodiscard]] std::size_t token_count() const noexcept {
    return token_count_;
  }
  [[nodiscard]] BatchToken& token(std::size_t i) noexcept {
    return tokens_[i];
  }

  /// Lane `lane`'s cumulative EngineResult over every batch fed since
  /// begin_run — exactly what the oracle's replica re-run produces.
  [[nodiscard]] const engine::EngineResult& result(std::uint32_t lane) const {
    return results_[lane];
  }

  /// Opens the next retry round: clears the token list, keeps sessions
  /// (rounds accumulate; lanes replay cumulatively, extending — never
  /// rewriting — earlier completions).
  void next_round();

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Stage attribution snapshot: {"workers","rounds","batches",
  /// "max_in_flight","stage_ns":{"control","resolve","execute","drain",
  /// "barrier"},"max_batch_conflicts","simd_kernel"}.
  [[nodiscard]] Json stats() const;

  /// Control-plane bookkeeping: adds tick-loop nanoseconds to the intake
  /// stage's bucket (measured by the callers around their tick loops).
  void add_control_ns(std::uint64_t ns) noexcept {
    control_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  void worker_loop(unsigned me);
  bool work_once(unsigned me, std::uint64_t& drained_upto);
  void resolve(BatchToken& token);
  void bump() noexcept;
  /// Control plane only: tops rings up from their overflow queues.
  /// Returns true when any token moved (consumers may need a wake).
  bool pump();

  std::vector<LaneSpec> lanes_;
  std::vector<engine::EngineSession> sessions_;   ///< one per lane
  std::vector<engine::EngineResult> results_;     ///< one per lane
  std::deque<BatchToken> tokens_;                 ///< pooled token storage
  std::size_t token_count_ = 0;                   ///< live tokens this round

  std::vector<TokenRing> resolve_rings_;  ///< one per worker
  std::vector<TokenRing> lane_rings_;     ///< one per lane
  /// Control-plane spill for full rings, FIFO per ring (resolver rings
  /// first, then lane rings — same indexing as the ring vectors). Only
  /// the control plane touches these; tokens enter a ring in cut order.
  std::vector<std::deque<BatchToken*>> resolve_overflow_;
  std::vector<std::deque<BatchToken*>> lane_overflow_;
  std::size_t overflowed_ = 0;  ///< tokens currently parked in overflow

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t signal_ = 0;      ///< bumped on every state change
  std::size_t done_workers_ = 0;  ///< workers finished draining this round
  bool shutdown_ = false;

  std::atomic<std::uint64_t> closed_round_{0};  ///< last round closed
  std::atomic<std::uint64_t> cut_round_{0};     ///< tokens cut this round
  std::uint64_t round_ = 0;                     ///< control-plane round no.
  std::uint64_t cut_seq_ = 0;                   ///< tokens cut, ever
  /// Wake batching: cuts since the last worker wake, and how many workers
  /// are parked. On single-CPU hosts (eager_wake_ == false) mid-round
  /// wakes are skipped entirely — context switches there only interleave
  /// the same total work — and the round barrier does all the waking.
  std::uint64_t cuts_since_wake_ = 0;
  std::atomic<unsigned> idle_workers_{0};
  bool eager_wake_ = true;

  // Stage attribution (cumulative across runs; wall time, so the one
  // deliberately non-deterministic part of a pipelined report).
  std::atomic<std::uint64_t> control_ns_{0};
  std::atomic<std::uint64_t> resolve_ns_{0};
  std::atomic<std::uint64_t> execute_ns_{0};
  std::atomic<std::uint64_t> drain_ns_{0};
  std::atomic<std::uint64_t> barrier_ns_{0};
  std::atomic<std::uint64_t> executed_round_{0};  ///< fed tokens this round
  std::atomic<std::uint32_t> max_conflicts_{0};
  std::uint64_t batches_total_ = 0;
  std::uint64_t rounds_total_ = 0;
  std::uint64_t max_in_flight_ = 0;
};

}  // namespace pmtree::serve
