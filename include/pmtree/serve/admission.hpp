// Admission control: the bounded front door of the serve pipeline.
//
// A production front-end never lets its queue grow without bound — it
// either sheds load (reject fast, keep latency bounded) or applies
// backpressure (block the caller until space frees), and it refuses to
// keep work whose deadline has already passed. AdmissionController is
// that policy, operated on the server's simulated clock: a FIFO of
// admitted-but-unbatched requests capped at `queue_bound`, an overflow
// queue modelling blocked callers (kBlock) or an immediate-shed verdict
// (kShed), and a deadline sweep that expires requests still queued past
// their budget. This mirrors how memory-constrained tree schedulers
// throttle admission to bound in-flight work (Marchal/Sinnen/Vivien;
// Eyraud-Dubois et al.) — here the bounded resource is the batch queue in
// front of the parallel memory system.
//
// All methods are called from the server's single-threaded control plane
// in a fixed per-tick order (expire → promote → intake → batch); the
// controller itself holds no locks and no clock — `now` is always passed
// in. Determinism follows from that fixed order (DESIGN.md §11).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "pmtree/serve/request.hpp"

namespace pmtree::serve {

/// What to do with a request that finds the admission queue full.
enum class OverflowPolicy : std::uint8_t {
  kShed,   ///< reject immediately with RequestStatus::kShed
  kBlock,  ///< the caller waits; admitted FIFO as soon as space frees
};

struct AdmissionOptions {
  /// Maximum requests admitted-but-unbatched at any time. 0 behaves as 1.
  std::size_t queue_bound = 256;
  OverflowPolicy overflow = OverflowPolicy::kShed;
};

/// One queued request, as the batcher sees it: the canonical index plus
/// the fields admission and batching decide on. `nodes` aliases the
/// request's payload (owned by the server for the whole run).
struct QueuedRequest {
  std::size_t index = 0;            ///< canonical request index
  std::uint64_t submit_cycle = 0;
  std::uint64_t deadline_cycles = 0;
  std::uint64_t admitted_cycle = 0;
  const std::vector<Node>* nodes = nullptr;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {
    if (options_.queue_bound == 0) options_.queue_bound = 1;
  }

  enum class Decision : std::uint8_t {
    kAdmitted,       ///< entered the pending queue at `now`
    kBlocked,        ///< queue full, caller blocks (kBlock policy)
    kShedNow,        ///< queue full, rejected (kShed policy)
    kDeadOnArrival,  ///< deadline already elapsed at intake
  };

  /// Intake of one submitted request at tick `now`. `pool_has_room` is
  /// the capacity verdict of any *shared* layer above this controller (a
  /// forest's global queue bound): when false and the controller's own
  /// queue has space, the request blocks rather than sheds — running out
  /// of the shared pool is the pool's fault, not this caller's, so the
  /// overflow policy (which prices the tenant's own quota) never applies.
  /// Shed therefore remains attributable to the tenant's own queue bound
  /// alone, the isolation invariant multi-tenant serving needs.
  Decision offer(std::size_t index, const Request& request, std::uint64_t now,
                 bool pool_has_room = true) {
    if (expired_at(request.submit_cycle, request.deadline_cycles, now)) {
      return Decision::kDeadOnArrival;
    }
    if (request.deadline_cycles != 0) saw_deadline_ = true;
    QueuedRequest q{index, request.submit_cycle, request.deadline_cycles, now,
                    &request.nodes};
    if (pending_.size() < options_.queue_bound) {
      if (!pool_has_room) {
        blocked_.push_back(q);
        return Decision::kBlocked;
      }
      push_pending(q);
      return Decision::kAdmitted;
    }
    if (options_.overflow == OverflowPolicy::kBlock) {
      blocked_.push_back(q);
      return Decision::kBlocked;
    }
    return Decision::kShedNow;
  }

  /// Deadline sweep at tick `now`: removes every queued request — pending
  /// first (FIFO order), then blocked — whose budget has elapsed, and
  /// appends their canonical indices to `expired`.
  void expire(std::uint64_t now, std::vector<std::size_t>& expired) {
    // One-way latch: until some offered request has carried a nonzero
    // deadline, no queued entry can ever expire, and the per-tick queue
    // scans (2 per tick per tenant, forever) are pure overhead.
    if (!saw_deadline_) return;
    sweep(pending_, now, expired, /*count_nodes=*/true);
    sweep(blocked_, now, expired, /*count_nodes=*/false);
  }

  /// Moves blocked callers into the pending queue while space allows,
  /// stamping them admitted at `now`; appends promoted indices. `limit`
  /// caps how many may be promoted this call — the shared-pool layer's
  /// headroom (defaults to unlimited for single-tenant use).
  void promote(std::uint64_t now, std::vector<std::size_t>& promoted,
               std::size_t limit = ~std::size_t{0}) {
    while (limit-- > 0 && !blocked_.empty() &&
           pending_.size() < options_.queue_bound) {
      QueuedRequest q = blocked_.front();
      blocked_.pop_front();
      q.admitted_cycle = now;
      push_pending(q);
      promoted.push_back(q.index);
    }
  }

  /// The batcher drains from the front of this queue (see BatchFormer).
  /// Callers must keep `pending_node_count` consistent via `on_batched`.
  [[nodiscard]] std::deque<QueuedRequest>& pending() noexcept {
    return pending_;
  }
  [[nodiscard]] const std::deque<QueuedRequest>& pending() const noexcept {
    return pending_;
  }
  /// Bookkeeping callback: `nodes` payload nodes just left the pending
  /// queue inside a batch. A claim larger than the tracked count would
  /// wrap the counter and wedge batching at "forever full" — that is a
  /// caller bug, caught here rather than downstream.
  void on_batched(std::uint64_t nodes) noexcept {
    assert(nodes <= pending_node_count_);
    pending_node_count_ -= nodes;
  }

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t pending_node_count() const noexcept {
    return pending_node_count_;
  }
  [[nodiscard]] std::size_t blocked_count() const noexcept {
    return blocked_.size();
  }
  [[nodiscard]] bool idle() const noexcept {
    return pending_.empty() && blocked_.empty();
  }
  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] static bool expired_at(std::uint64_t submit,
                                       std::uint64_t deadline,
                                       std::uint64_t now) noexcept {
    // Compare as elapsed-vs-budget, not now-vs-(submit + deadline): the
    // sum form wraps for near-max deadlines ("effectively no deadline")
    // and would expire such requests instantly. The controller never sees
    // now < submit (intake requires submit_cycle <= tick), so the
    // subtraction cannot wrap; the guard keeps the function total anyway.
    return deadline != 0 && now >= submit && now - submit >= deadline;
  }

 private:
  void push_pending(const QueuedRequest& q) {
    pending_.push_back(q);
    pending_node_count_ += q.nodes->size();
  }

  void sweep(std::deque<QueuedRequest>& queue, std::uint64_t now,
             std::vector<std::size_t>& expired, bool count_nodes) {
    // The sweep runs every tick on every tenant; the common case — nothing
    // expired — must not churn a rebuilt deque (two deque constructions
    // per tick dominated the serve profile). Scan first, rebuild only on
    // an actual expiry.
    bool any = false;
    for (const QueuedRequest& q : queue) {
      if (expired_at(q.submit_cycle, q.deadline_cycles, now)) {
        any = true;
        break;
      }
    }
    if (!any) return;
    std::deque<QueuedRequest> keep;
    for (const QueuedRequest& q : queue) {
      if (expired_at(q.submit_cycle, q.deadline_cycles, now)) {
        expired.push_back(q.index);
        if (count_nodes) pending_node_count_ -= q.nodes->size();
      } else {
        keep.push_back(q);
      }
    }
    queue.swap(keep);
  }

  AdmissionOptions options_;
  std::deque<QueuedRequest> pending_;
  std::deque<QueuedRequest> blocked_;
  std::uint64_t pending_node_count_ = 0;
  /// Set once a deadline-bearing request is offered; gates expire().
  bool saw_deadline_ = false;
};

}  // namespace pmtree::serve
