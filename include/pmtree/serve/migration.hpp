// Skew-adaptive load balancing for the serve loop (DESIGN.md §15).
//
// The paper's mappings are optimal for template *structure* but static:
// under hot-spot Zipf arrivals a fixed mapping concentrates load on the
// few modules owning the hot subtrees, and every serving batch barriers
// on its slowest module. This layer closes the loop online:
//
//   HeatTracker       — integer heat ledger: one exponentially decayed
//                       counter per (subtree at level L, base color),
//                       plus per-module fixed heat for nodes above L.
//   MigrationPlanner  — epoch controller. Every `epoch_batches` cut
//                       batches it decays the ledger, picks the top-k
//                       hottest subtrees, and greedily chooses per-subtree
//                       color rotations that minimize the predicted peak
//                       module heat, materializing a MigratedMapping
//                       (mapping/combinators.hpp) for subsequent batches.
//   MigrationEvent    — the audit record of one epoch plan.
//
// Determinism contract: the planner is driven exclusively by the control
// plane, in batch cut order — observe(nodes, cycle) folds each batch's
// deduped node set into the ledger using the *base* mapping's colors
// (resolved right here, on the control plane, never by a worker). Planner
// state is therefore a pure function of the cut sequence, which is itself
// a pure function of the submitted request set; the oracle tick loop and
// the staged pipeline make identical calls in identical order, so both
// produce identical epoch mappings and bit-identical responses at any
// worker count. Decay is integer (h -= h >> decay_shift at epoch
// boundaries) — no floating point anywhere on the decision path.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "pmtree/mapping/combinators.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

/// Epoch-based remapping knobs. Disabled by default: `epoch_batches == 0`
/// keeps every serve path byte-identical to the static-mapping server.
struct MigrationPolicy {
  /// Plan an epoch every this many cut batches. 0 disables migration.
  std::uint32_t epoch_batches = 0;
  /// Hottest subtrees remapped per epoch (the rest reset to rotation 0).
  std::uint32_t top_k = 4;
  /// Subtree granularity level L: heat is tracked (and rotations applied)
  /// for the 2^L subtrees rooted at level L. Nodes above L never migrate.
  std::uint32_t subtree_level = 4;
  /// Epoch decay: every counter loses h >> decay_shift at each epoch
  /// boundary (shift 1 ≈ half-life of one epoch). 0 forgets everything.
  std::uint32_t decay_shift = 1;
  /// Subtrees with decayed heat below this stay on rotation 0.
  std::uint64_t min_heat = 1;

  [[nodiscard]] bool enabled() const noexcept {
    return epoch_batches > 0 && top_k > 0;
  }
};

/// One epoch plan, for audit and metrics. `moves` lists every selected
/// subtree with its chosen rotation (rotation 0 = deliberately kept).
struct MigrationEvent {
  std::uint64_t epoch = 0;        ///< 1-based epoch ordinal
  std::uint64_t cycle = 0;        ///< control-plane cycle of the plan
  std::uint64_t batches = 0;      ///< cumulative batches observed so far
  std::uint64_t peak_before = 0;  ///< predicted peak module heat, all rot 0
  std::uint64_t peak_after = 0;   ///< predicted peak under the chosen table
  std::vector<std::pair<std::uint32_t, Color>> moves;  ///< (subtree, rot)

  [[nodiscard]] Json to_json() const;
};

/// The integer heat ledger. Usable standalone (unit-tested for decay
/// semantics); MigrationPlanner owns one.
class HeatTracker {
 public:
  /// Tracks the 2^`subtree_level` subtrees of a tree over `modules` base
  /// colors.
  HeatTracker(std::uint32_t subtree_level, std::uint32_t modules);

  /// Folds one batch: node i (with its base color) adds one unit of heat
  /// to (its subtree, base color) when at/below the granularity level, or
  /// to the fixed per-module ledger when above it.
  void observe(std::span<const Node> nodes,
               std::span<const Color> base_colors);
  /// Exponential decay step: every counter loses `count >> shift`
  /// (shift 0 clears the ledger).
  void decay(std::uint32_t shift) noexcept;

  [[nodiscard]] std::uint32_t subtree_level() const noexcept {
    return level_;
  }
  [[nodiscard]] std::uint32_t subtree_count() const noexcept {
    return static_cast<std::uint32_t>(subtree_total_.size());
  }
  [[nodiscard]] std::uint32_t modules() const noexcept { return modules_; }
  /// Heat of subtree `sid` on base color `c`.
  [[nodiscard]] std::uint64_t cell(std::uint32_t sid,
                                   std::uint32_t c) const noexcept {
    return matrix_[std::size_t{sid} * modules_ + c];
  }
  /// Total heat of subtree `sid` across colors.
  [[nodiscard]] std::uint64_t subtree_heat(std::uint32_t sid) const noexcept {
    return subtree_total_[sid];
  }
  /// Heat of nodes above the granularity level on module `m` (immovable).
  [[nodiscard]] std::uint64_t fixed_heat(std::uint32_t m) const noexcept {
    return fixed_[m];
  }
  /// Total heat observed and still remembered (post-decay).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  std::uint32_t level_;
  std::uint32_t modules_;
  std::vector<std::uint64_t> matrix_;         ///< subtree-major, M per row
  std::vector<std::uint64_t> subtree_total_;  ///< row sums of matrix_
  std::vector<std::uint64_t> fixed_;          ///< per-module, nodes above L
  std::uint64_t total_ = 0;
};

/// The epoch controller. One planner per server run (or per Forest
/// tenant); all calls come from the single-threaded control plane.
class MigrationPlanner {
 public:
  /// `base` must outlive the planner (and every mapping it mints).
  MigrationPlanner(const TreeMapping& base, const MigrationPolicy& policy);

  /// Folds one freshly cut batch (deduped nodes) into the ledger, in cut
  /// order, and plans a new epoch when the policy's batch budget is
  /// reached. `cycle` is the control-plane tick that cut the batch (audit
  /// only — it never affects the plan).
  void observe(std::span<const Node> nodes, std::uint64_t cycle);

  /// The mapping batches cut *now* should resolve against: the base until
  /// the first epoch, then the latest epoch's MigratedMapping. Pointers
  /// stay valid for the planner's lifetime (epochs live in a deque).
  [[nodiscard]] const TreeMapping& current() const noexcept {
    return epochs_.empty() ? base_ : static_cast<const TreeMapping&>(
                                         epochs_.back());
  }

  [[nodiscard]] std::uint64_t epochs_planned() const noexcept {
    return epochs_planned_;
  }
  [[nodiscard]] std::uint64_t batches_observed() const noexcept {
    return batches_total_;
  }
  [[nodiscard]] const std::vector<MigrationEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const HeatTracker& heat() const noexcept { return heat_; }

  /// Metrics payload for ServeMetrics::set_migration: policy echo, epoch
  /// and move counters, predicted peak before/after the last plan, and the
  /// last few events (full event list stays in events()).
  [[nodiscard]] Json stats() const;

 private:
  void plan(std::uint64_t cycle);

  const TreeMapping& base_;
  MigrationPolicy policy_;
  HeatTracker heat_;
  std::vector<Color> color_scratch_;
  /// Epoch mapping snapshots. Deque: stable addresses — in-flight batch
  /// tokens hold raw pointers to their epoch's mapping across a round.
  std::deque<MigratedMapping> epochs_;
  std::vector<MigrationEvent> events_;
  std::uint32_t batches_since_plan_ = 0;
  std::uint64_t batches_total_ = 0;
  std::uint64_t epochs_planned_ = 0;
  std::uint64_t subtrees_moved_ = 0;  ///< moves with rotation != 0, ever
};

}  // namespace pmtree::serve
