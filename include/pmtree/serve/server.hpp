// Server: the concurrent request front-end of pmtree (DESIGN.md §11).
//
// The rest of the library answers "what does one access cost under a
// mapping"; the server answers the system question on top of it: what
// latency does a *stream* of concurrent clients observe when their
// requests are admission-controlled, dynamically batched into template
// instances, and fed through the cycle-accurate memory engine? The shape
// is an inference-serving front-end transplanted onto the paper's machine
// model:
//
//   clients ──submit()──▶ MPSC inboxes ─▶ canonical order ─▶ tick loop
//                                             (admission ▸ batching)
//                                                  │ batches
//                                                  ▼
//                                    replicas × CycleEngine (workers)
//
// run() is a simulation on the engine's cycle clock. Submitted requests
// are drained from the striped inboxes and stably sorted by
// (submit_cycle, client, seq) — the canonical order, a pure function of
// the submitted *set*, so results never depend on which thread delivered
// a request first. The control plane then ticks every `tick_cycles`
// cycles, each tick running a fixed phase order:
//
//   expire  — drop queued requests whose deadline budget has elapsed;
//   promote — move blocked callers into freed queue slots (FIFO);
//   intake  — offer newly arrived requests to admission control;
//   batch   — let the BatchFormer cut zero or more batches;
//   observe — record queue-depth gauges for this tick.
//
// Each formed batch is one parallel memory access, assigned round-robin
// (batch id mod replicas) to a memory-system replica; every replica runs
// the existing CycleEngine over its batch list with
// ArrivalSchedule::explicit_cycles(dispatch ticks). Replicas execute via
// parallel_chunks with `workers` threads — the ONLY parallel phase.
// Worker count therefore affects wall-clock only: workers == 1 is the
// deterministic single-threaded oracle, and any other count produces
// bit-identical responses, batches and metrics (tested request-for-request
// at 1/2/8 workers).
//
// With a RetryPolicy the pipeline above becomes one *round* of several:
// after assembly, completions that overstayed the attempt timeout are
// discarded and re-enter intake at the cycle the caller would resend
// (timeout + capped exponential backoff), and the tick loop / replica
// execution repeat until a round produces no retries. Faults injected via
// EngineOptions::faults (fault/plan.hpp) are what make retries fire in
// practice: fail-stopped modules reroute, slowed modules stall, residency
// inflates past the timeout, and the retry lands on a later batch —
// usually after DegradedMapping-equivalent routing has settled. All of it
// stays on the control plane's clock, so determinism is unchanged.
//
// Graceful shutdown is the run() contract itself: every request submitted
// before run() reaches a terminal status (kOk, kShed or kExpired) —
// nothing is silently dropped — and BatchPolicy::max_wait_cycles bounds
// how long any admitted request can sit unbatched, so the loop provably
// drains.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/metrics.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/mem/arena.hpp"
#include "pmtree/serve/adaptive.hpp"
#include "pmtree/serve/admission.hpp"
#include "pmtree/serve/batch.hpp"
#include "pmtree/serve/metrics.hpp"
#include "pmtree/serve/migration.hpp"
#include "pmtree/serve/mutation.hpp"
#include "pmtree/serve/pipeline.hpp"
#include "pmtree/serve/request.hpp"
#include "pmtree/util/json.hpp"

namespace pmtree::serve {

/// Per-request retry with capped exponential backoff, judged on the
/// engine's simulated clock. After each serving round the server inspects
/// every freshly completed request: if its memory-system residency
/// (completion - dispatch) exceeded `attempt_timeout_cycles` and it has
/// attempts left, the completion is discarded and the request re-enters
/// intake at dispatch + timeout + backoff(attempt) — the cycle the caller
/// would have given up and resent. Backoff doubles from `backoff_base_
/// cycles` per retry, capped at `backoff_cap_cycles`. The original
/// submit_cycle and deadline ride along unchanged, so the existing
/// deadline machinery is the retry budget: a retry that lands past the
/// deadline is dead on arrival (kExpired), never served twice.
///
/// Retries run in the single-threaded control plane between replica
/// rounds; responses stay bit-identical at any worker count.
struct RetryPolicy {
  /// Extra attempts per request. 0 disables retries entirely (the server
  /// then behaves exactly as the single-round pipeline).
  std::uint32_t max_retries = 0;
  /// A completed attempt whose completion - dispatch exceeds this budget
  /// is treated as timed out and retried. 0 disables.
  std::uint64_t attempt_timeout_cycles = 0;
  std::uint64_t backoff_base_cycles = 8;
  std::uint64_t backoff_cap_cycles = 256;

  [[nodiscard]] bool enabled() const noexcept {
    return max_retries > 0 && attempt_timeout_cycles > 0;
  }
  /// Backoff before retry number `attempt` (1-based): base doubled
  /// attempt-1 times, saturating at the cap.
  [[nodiscard]] std::uint64_t backoff(std::uint32_t attempt) const noexcept {
    std::uint64_t b = backoff_base_cycles;
    for (std::uint32_t i = 1; i < attempt && b < backoff_cap_cycles; ++i) {
      b *= 2;
    }
    return b < backoff_cap_cycles ? b : backoff_cap_cycles;
  }
};

struct ServerOptions {
  /// Admission tick period in engine cycles (0 behaves as 1). Requests are
  /// only admitted / batched on tick boundaries — the batching latency any
  /// request pays is at most tick_cycles of rounding plus its queue wait.
  std::uint64_t tick_cycles = 4;
  /// Independent memory-system replicas; batch b executes on replica
  /// b mod replicas (0 behaves as 1). Replicas model scale-out of the
  /// memory system itself: each runs the full module array.
  std::uint32_t replicas = 1;
  /// Worker threads for replica execution (0 = hardware concurrency).
  /// Affects wall-clock only; results are bit-identical at any count.
  unsigned workers = 1;
  AdmissionOptions admission;
  BatchPolicy batch;
  RetryPolicy retry;
  /// Replica engine knobs. `engine.faults` (fault/plan.hpp) injects the
  /// same fault schedule into every replica; the serve layer folds the
  /// resulting reroute/stall counters into its metrics and, with a
  /// RetryPolicy, turns fault-inflated residencies into retries.
  engine::EngineOptions engine;
  /// Staged pipeline execution (pipeline.hpp). `pipeline.workers >= 1`
  /// routes run() through the StagedRunner — responses stay bit-identical
  /// to the classic loop at every worker count; `workers == 0` (default)
  /// keeps the single-threaded tick loop, which doubles as the frozen
  /// differential oracle. Faulted configurations (`engine.faults`
  /// non-empty) always take the oracle path regardless of this setting.
  PipelineOptions pipeline;
  /// Skew-adaptive remapping (migration.hpp). When enabled, a
  /// MigrationPlanner observes every cut batch on the control plane and
  /// re-colors hot subtrees onto cold modules at epoch boundaries; each
  /// batch resolves against its epoch's MigratedMapping. A control-plane
  /// decision, so responses stay bit-identical at any worker count and
  /// under the staged pipeline. Disabled (default) leaves every code path
  /// byte-identical to the static-mapping server. Faulted configurations
  /// keep the static mapping — fault reroute timelines already own the
  /// color space (DegradedMapping composes with MigratedMapping at the
  /// mapping layer instead; see DESIGN.md §15).
  MigrationPolicy migration;
  /// Read-write serving (mutation.hpp / DESIGN.md §16). When bound to a
  /// dyn::DynamicTree + IncrementalColorer, Insert/Erase requests apply
  /// PALM-style at the batch-cut barrier — a control-plane decision, so
  /// responses and the mutation log stay bit-identical at any worker
  /// count and under the staged pipeline. Mutually exclusive with
  /// migration (epoch remapping assumes a frozen shape; compose
  /// MigratedMapping at the mapping layer instead). Disabled (default)
  /// leaves every code path byte-identical to the read-only server.
  DynBinding dyn;
  /// Runtime mapping selection (adaptive.hpp / DESIGN.md §17). When
  /// enabled, an AdaptiveSelector scores every policy candidate against
  /// each cut batch on the control plane and switches the serving mapping
  /// at epoch boundaries when a candidate strictly wins — the R10
  /// COLOR-vs-LABEL-TREE trade-off decided by measurement. A
  /// control-plane decision, so responses stay bit-identical at any
  /// worker count and under the staged pipeline. Mutually exclusive with
  /// migration (both would own the epoch mapping) and with dyn (selection
  /// assumes a frozen shape); faulted configurations keep the static
  /// mapping, exactly like migration.
  AdaptivePolicy adaptive;
  /// Real per-module memory arenas (mem/arena.hpp / DESIGN.md §17; not
  /// owned, must outlive the run). When set, every cut batch's deduped
  /// node payloads are actually loaded from the arenas — on the control
  /// plane in the classic loop, on the resolve workers under the staged
  /// pipeline — and accounted in ServeReport::memory plus a "memory"
  /// metrics section. Purely observational: responses are bit-identical
  /// with the backend on or off. Mutually exclusive with dyn (arenas are
  /// sized for a frozen tree).
  const mem::MemoryBackend* memory = nullptr;
};

/// Everything one run() observed, in canonical / dispatch order.
struct ServeReport {
  std::vector<Response> responses;      ///< canonical request order
  std::vector<FormedBatch> batches;     ///< dispatch (batch id) order
  std::vector<engine::EngineResult> replicas;  ///< per-replica trajectory
  std::uint64_t ticks = 0;              ///< admission ticks executed
  std::uint64_t rounds = 0;             ///< serving rounds (1 + retry waves)
  std::uint64_t final_cycle = 0;        ///< last completion / resolution
  /// Mutation log, in apply (batch barrier) order; empty for read-only
  /// runs. One record per writer, including rejected and deduped ones.
  std::vector<MutationRecord> mutations;
  /// Real-memory traffic over all cut batches; all-zero unless
  /// ServerOptions::memory was set. Order-invariant totals, identical
  /// between the classic loop and the staged pipeline.
  mem::TouchStats memory;
  Json metrics;                         ///< ServeMetrics::summary()

  [[nodiscard]] std::uint64_t count(RequestStatus status) const noexcept;

  /// Full report as JSON: the metrics summary plus scalar run facts and a
  /// per-response table — the payload bench_e19 and serve_demo export.
  [[nodiscard]] Json to_json() const;
};

class Server {
 public:
  /// `mapping` must outlive the server. Instruments land in the server's
  /// own registry (see registry()) under prefix "serve" plus
  /// "serve.replicaN.*" for each replica's engine run.
  explicit Server(const TreeMapping& mapping, ServerOptions options = {});

  /// Thread-safe MPSC submission; callable concurrently from any number
  /// of client threads. (client, seq) must be unique per run and
  /// submit_cycle nondecreasing per client, which every sane client
  /// satisfies by construction.
  void submit(Request request);
  void submit(std::vector<Request> requests);

  /// Drains every submitted request to a terminal status and returns the
  /// full report. Quiesce first: run() must not race concurrent submit()
  /// calls — the graceful-shutdown contract is "stop submitting, then
  /// run() resolves everything in flight". May be called repeatedly; each
  /// run consumes the requests submitted since the previous one.
  [[nodiscard]] ServeReport run();

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const TreeMapping& mapping() const noexcept {
    return mapping_;
  }
  /// The registry holding serve.* and serve.replicaN.* instruments,
  /// cumulative across run() calls.
  [[nodiscard]] const engine::MetricsRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct Inbox {
    std::mutex mutex;
    std::vector<Request> requests;
  };

  [[nodiscard]] std::vector<Request> drain_inboxes();
  /// The staged-pipeline twin of run() (defined in pipeline.cpp): same
  /// control-plane decisions, batch execution handed to the persistent
  /// StagedRunner. run() dispatches here when options_.pipeline.enabled()
  /// and the engine options carry no fault plan.
  [[nodiscard]] ServeReport run_pipeline();

  const TreeMapping& mapping_;
  ServerOptions options_;
  engine::MetricsRegistry registry_;
  std::array<Inbox, kStripes> inboxes_;
  /// Lazily built on the first pipelined run, then reused: the worker
  /// pool stays warm across run() calls.
  std::unique_ptr<StagedRunner> runner_;
};

}  // namespace pmtree::serve
