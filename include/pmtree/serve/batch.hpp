// Dynamic batching: turning concurrent requests into template instances.
//
// The paper's guarantee is per *template instance*: a good coloring bounds
// the conflict cost of an L(K) run or a C(D, c) composite accessed as a
// unit. A stream of independent point lookups gets none of that benefit —
// each is its own one-node access — until a batcher aggregates them. The
// BatchFormer is that aggregator, shaped like an inference server's
// dynamic batcher: requests accumulate in the admission queue, and a
// batch is cut when enough nodes are waiting (max_batch_nodes) or the
// oldest request has waited long enough (max_wait_cycles).
//
// Each batch becomes ONE parallel memory access. Its node set is the
// members' payloads, deduplicated and sorted in (level, index) order —
// duplicate lookups of a hot key collapse into one physical request, the
// classic batching win — and decomposed into maximal per-level runs:
// contiguous runs become L(K) parts and the whole batch is the composite
// C(D, c) whose parts those runs are. The decomposition is reported on
// the batch so benches and tests can price it with the paper's cost
// machinery.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pmtree/serve/admission.hpp"
#include "pmtree/serve/request.hpp"
#include "pmtree/templates/instance.hpp"

namespace pmtree::serve {

struct BatchPolicy {
  /// Cut a batch once this many payload nodes are pending, and cap each
  /// batch's (pre-dedup) node intake at this size. A single request larger
  /// than the cap still dispatches — as its own batch — so oversized
  /// requests are never starved or split. 0 behaves as 1.
  std::uint64_t max_batch_nodes = 64;
  /// Cut a batch once the oldest pending request has waited this many
  /// cycles since *admission* (for blocked-then-promoted callers, the
  /// promotion tick — blocked time doesn't count against the batching
  /// window), full or not. 0 means every tick flushes — no batching
  /// delay. This bound is what guarantees the server drains: every
  /// admitted request dispatches within max_wait_cycles of entering the
  /// pending queue (plus tick rounding).
  std::uint64_t max_wait_cycles = 16;
};

/// One formed batch == one parallel memory access.
struct FormedBatch {
  std::uint64_t id = 0;            ///< global batch id, in dispatch order
  std::uint64_t formed_cycle = 0;  ///< admission tick that cut the batch
  std::vector<std::size_t> members;     ///< canonical request indices
  std::vector<Node> nodes;              ///< deduped union, (level,index) order
  CompositeInstance decomposition;      ///< C(D, c) of maximal L(K) runs
  std::uint64_t requested_nodes = 0;    ///< pre-dedup node count

  /// Nodes saved by coalescing duplicate lookups within the batch.
  [[nodiscard]] std::uint64_t coalesced_nodes() const noexcept {
    return requested_nodes - nodes.size();
  }
};

class BatchFormer {
 public:
  explicit BatchFormer(BatchPolicy policy) : policy_(policy) {
    if (policy_.max_batch_nodes == 0) policy_.max_batch_nodes = 1;
  }

  /// Drains the admission queue at tick `now` into zero or more batches.
  /// A batch is cut while the queue is non-empty and either enough nodes
  /// are pending or the oldest request has exhausted its wait budget; each
  /// batch takes requests front-first until the next request would push it
  /// past max_batch_nodes (always at least one). `controller.on_batched`
  /// is notified so the pending node count stays consistent.
  [[nodiscard]] std::vector<FormedBatch> form(std::uint64_t now,
                                              AdmissionController& controller);

  /// Whether the cut condition holds at tick `now`: the queue is
  /// non-empty and either max_batch_nodes are pending or the oldest
  /// request has waited max_wait_cycles since admission. form() cuts
  /// while this is true; schedulers that meter batch formation (the
  /// forest's deficit round-robin) poll it one batch at a time.
  [[nodiscard]] bool due(std::uint64_t now,
                         const AdmissionController& controller) const;

  /// The pre-dedup node count the next form_one() would take — the DRR
  /// cost of the batch, computed by the same front-first fill walk
  /// without mutating the queue. 0 iff the queue is empty.
  [[nodiscard]] std::uint64_t next_batch_cost(
      const AdmissionController& controller) const;

  /// Cuts exactly one batch at tick `now`. Precondition: the pending
  /// queue is non-empty (callers gate on due()). form() is equivalent to
  /// `while (due(...)) form_one(...)`.
  [[nodiscard]] FormedBatch form_one(std::uint64_t now,
                                     AdmissionController& controller);

  /// The fill walk of form_one() without the coalescing step: `nodes` is
  /// left as the raw member concatenation and `decomposition` empty. The
  /// staged pipeline cuts batches with this on the control plane and runs
  /// coalesce() in its resolve stage, off the control thread;
  /// form_one() == form_one_raw() + coalesce on the node set. Membership,
  /// ids, costs and admission bookkeeping are identical.
  [[nodiscard]] FormedBatch form_one_raw(std::uint64_t now,
                                         AdmissionController& controller);

  /// The coalescing kernel, exposed for direct testing: sorts `nodes` in
  /// (level, index) order, removes duplicates in place, and returns the
  /// C(D, c) whose parts are the maximal per-level runs of what remains.
  [[nodiscard]] static CompositeInstance coalesce(std::vector<Node>& nodes);

  [[nodiscard]] const BatchPolicy& policy() const noexcept { return policy_; }

 private:
  BatchPolicy policy_;
  std::uint64_t next_id_ = 0;
};

}  // namespace pmtree::serve
