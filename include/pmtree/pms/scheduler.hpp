// BatchScheduler: makespan accounting for *concurrent* template accesses.
//
// The paper's cost model charges each parallel access its busiest module's
// occupancy (rounds), one access at a time. Real parallel memory systems
// overlap accesses from different processors: module queues serve one
// request per cycle, so a batch of accesses completes when the busiest
// module drains. BatchScheduler computes that makespan and per-module
// queue depths, quantifying how a mapping's conflicts translate into
// end-to-end batch latency:
//
//     makespan(batch) = max over modules of total requests routed to it,
//
// which lower-bounds any schedule and is achieved by module-FIFO service
// (requests are independent single-cycle reads). Sequential rounds-per-
// access summation (MemorySystem) is an upper bound; the gap between the
// two is the overlap a real system can exploit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/pms/workload.hpp"

namespace pmtree {

struct BatchResult {
  std::uint64_t accesses = 0;
  std::uint64_t requests = 0;
  std::uint64_t makespan = 0;        ///< cycles until the batch completes
  std::uint64_t ideal = 0;           ///< ceil(requests / modules)
  std::vector<std::uint64_t> queue;  ///< per-module request counts

  /// Batch-level slowdown versus a perfectly spread batch (>= 1.0).
  [[nodiscard]] double skew() const noexcept {
    return ideal == 0 ? 1.0
                      : static_cast<double>(makespan) /
                            static_cast<double>(ideal);
  }
};

class BatchScheduler {
 public:
  explicit BatchScheduler(const TreeMapping& mapping) : mapping_(mapping) {}

  /// Schedules all accesses of `batch` concurrently.
  [[nodiscard]] BatchResult schedule(std::span<const Workload::Access> batch) const;

  /// Convenience: the whole workload as one batch.
  [[nodiscard]] BatchResult schedule(const Workload& workload) const {
    return schedule(std::span<const Workload::Access>(workload.accesses()));
  }

  /// Splits the workload into consecutive batches of `batch_size` accesses
  /// and returns the summed makespan — the completion time of a system
  /// that admits `batch_size` processors' accesses at a time.
  [[nodiscard]] std::uint64_t total_makespan(const Workload& workload,
                                             std::size_t batch_size) const;

 private:
  const TreeMapping& mapping_;
};

}  // namespace pmtree
