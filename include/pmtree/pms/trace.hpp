// Access tracing and latency modelling for the parallel memory system.
//
// run_traced() replays a workload against a mapping and records one entry
// per access (requests, rounds, conflicts) plus cumulative per-module
// traffic — the raw material for offline analysis; Trace::print_csv
// exports it for spreadsheets and Trace::to_json in the same
// machine-readable format engine metrics snapshots and bench reports use.
// LatencyModel converts round counts into nanoseconds under a
// simple fixed-overhead + per-round cost model, turning the paper's
// abstract conflict counts into end-to-end latency estimates a systems
// reader can relate to.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/util/json.hpp"
#include "pmtree/util/stats.hpp"

namespace pmtree {

struct TraceEntry {
  std::uint64_t access_id = 0;
  std::uint64_t requests = 0;
  std::uint64_t rounds = 0;
  std::uint64_t conflicts = 0;
};

class Trace {
 public:
  Trace(std::vector<TraceEntry> entries, std::vector<std::uint64_t> traffic)
      : entries_(std::move(entries)), traffic_(std::move(traffic)) {
    for (const TraceEntry& e : entries_) rounds_.add(e.rounds);
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& traffic() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const Accumulator& round_stats() const noexcept {
    return rounds_;
  }

  /// Accesses whose rounds exceed `threshold` (the conflict outliers).
  [[nodiscard]] std::vector<TraceEntry> slower_than(std::uint64_t threshold) const;

  /// CSV export: access_id,requests,rounds,conflicts per line.
  void print_csv(std::ostream& os) const;

  /// JSON export — the same machine-readable format engine/metrics
  /// snapshots use:
  ///   {"accesses": n,
  ///    "rounds": {"total","mean","max"},
  ///    "entries": [{"access_id","requests","rounds","conflicts"}...],
  ///    "traffic": [per-module totals...]}
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<TraceEntry> entries_;
  std::vector<std::uint64_t> traffic_;
  Accumulator rounds_;
};

/// Replays `workload` against `mapping`, recording every access.
[[nodiscard]] Trace run_traced(const TreeMapping& mapping,
                               const Workload& workload);

/// Cost model: an access of r rounds takes issue_ns + r * round_ns.
struct LatencyModel {
  std::uint64_t issue_ns = 40;   ///< fixed per-access overhead
  std::uint64_t round_ns = 100;  ///< one serialized memory round

  [[nodiscard]] constexpr std::uint64_t access_ns(std::uint64_t rounds) const noexcept {
    return issue_ns + rounds * round_ns;
  }

  /// Total latency of a trace, and what it would have been conflict-free
  /// (every access one round): the pair quantifies the conflict tax.
  struct Estimate {
    std::uint64_t total_ns = 0;
    std::uint64_t conflict_free_ns = 0;

    [[nodiscard]] double overhead_factor() const noexcept {
      return conflict_free_ns == 0
                 ? 1.0
                 : static_cast<double>(total_ns) /
                       static_cast<double>(conflict_free_ns);
    }
  };

  [[nodiscard]] Estimate estimate(const Trace& trace) const;
};

}  // namespace pmtree
