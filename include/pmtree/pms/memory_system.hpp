// The parallel memory system model (Section 1 of the paper).
//
// A system of M modules serves one *parallel access* — a set of node
// requests — per group of rounds: requests to distinct modules proceed in
// the same round, requests colliding on one module queue up, so an access
// whose busiest module receives r requests takes exactly r rounds. This is
// precisely the paper's cost model: rounds = conflicts + 1.
//
// MemorySystem is the sequential accounting engine; the threaded driver
// lives in simulator.hpp. Besides round counts it tracks per-module
// traffic so benches can report utilization skew.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/stats.hpp"

namespace pmtree {

/// Outcome of one parallel access.
struct AccessResult {
  std::uint64_t requests = 0;   ///< nodes requested
  std::uint64_t rounds = 0;     ///< serialized memory rounds needed
  std::uint64_t conflicts = 0;  ///< rounds - 1 (0 for empty access)
};

class MemorySystem {
 public:
  /// A system with the mapping's module count; the mapping supplies the
  /// module of each node (the address function).
  explicit MemorySystem(const TreeMapping& mapping);

  /// Serves one parallel access to `nodes`; updates cumulative stats.
  AccessResult access(std::span<const Node> nodes);

  /// Number of memory modules.
  [[nodiscard]] std::uint32_t modules() const noexcept {
    return static_cast<std::uint32_t>(traffic_.size());
  }

  /// Total requests routed to each module since construction/reset.
  [[nodiscard]] const std::vector<std::uint64_t>& traffic() const noexcept {
    return traffic_;
  }

  /// Rounds-per-access distribution since construction/reset.
  [[nodiscard]] const Accumulator& round_stats() const noexcept {
    return round_stats_;
  }

  /// Total rounds across all accesses (the simulated completion time).
  [[nodiscard]] std::uint64_t total_rounds() const noexcept {
    return round_stats_.sum();
  }

  /// Ideal lower bound on rounds for the traffic served so far:
  /// ceil(total requests / modules) aggregated per access.
  [[nodiscard]] std::uint64_t ideal_rounds() const noexcept {
    return ideal_rounds_;
  }

  void reset();

 private:
  const TreeMapping& mapping_;
  std::vector<std::uint64_t> traffic_;
  std::vector<std::uint32_t> scratch_;  ///< per-access occupancy histogram
  std::vector<Color> colors_;           ///< per-access batch color buffer
  Accumulator round_stats_;
  std::uint64_t ideal_rounds_ = 0;
};

}  // namespace pmtree
