// Workload generation: reproducible streams of parallel accesses
// (node sets) against a tree, mirroring the access patterns the paper
// motivates — heap traversals (paths), subtree fetches, level scans,
// B-tree range queries (composites), and mixes thereof.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

/// A pre-generated sequence of parallel accesses.
class Workload {
 public:
  using Access = std::vector<Node>;

  Workload() = default;
  explicit Workload(std::vector<Access> accesses)
      : accesses_(std::move(accesses)) {}

  [[nodiscard]] const std::vector<Access>& accesses() const noexcept {
    return accesses_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return accesses_.size(); }
  [[nodiscard]] const Access& operator[](std::size_t i) const noexcept {
    return accesses_[i];
  }

  /// `count` random size-K subtree accesses. Degenerate parameters (K not
  /// of the form 2^t - 1, K larger than the tree, count == 0) yield a
  /// well-formed empty workload — the same convention holds for every
  /// generator below.
  [[nodiscard]] static Workload subtrees(const CompleteBinaryTree& tree,
                                         std::uint64_t K, std::size_t count,
                                         std::uint64_t seed);

  /// `count` random K-node ascending-path accesses.
  [[nodiscard]] static Workload paths(const CompleteBinaryTree& tree,
                                      std::uint64_t K, std::size_t count,
                                      std::uint64_t seed);

  /// `count` random K-node level-run accesses.
  [[nodiscard]] static Workload level_runs(const CompleteBinaryTree& tree,
                                           std::uint64_t K, std::size_t count,
                                           std::uint64_t seed);

  /// `count` accesses drawn uniformly from the three elementary kinds,
  /// each of (approximately, subtree sizes are rounded to 2^t - 1) size K.
  [[nodiscard]] static Workload mixed(const CompleteBinaryTree& tree,
                                      std::uint64_t K, std::size_t count,
                                      std::uint64_t seed);

  /// `count` random composite C(D, c) accesses.
  [[nodiscard]] static Workload composites(const CompleteBinaryTree& tree,
                                           std::uint64_t D, std::uint64_t c,
                                           std::size_t count, std::uint64_t seed);

  /// `count` B-tree style range queries over uniformly random leaf
  /// intervals of width at most `max_width` (full node set: subtree cover
  /// plus boundary search paths).
  [[nodiscard]] static Workload range_queries(const CompleteBinaryTree& tree,
                                              std::uint64_t max_width,
                                              std::size_t count,
                                              std::uint64_t seed);

 private:
  std::vector<Access> accesses_;
};

}  // namespace pmtree
