// ParallelAccessSimulator: a multithreaded driver that replays a Workload
// against a mapping and accounts the parallel memory system's behaviour.
//
// Worker threads claim accesses from a shared atomic cursor; each worker
// routes its access's requests through the (pure, thread-safe) mapping,
// counts the serialized rounds for that access, and accumulates results in
// thread-local state. Totals are merged once at the end, so the hot loop
// is contention-free — the standard HPC reduction pattern.
//
// The simulated quantity is the paper's cost model (rounds = busiest
// module's occupancy); the wall-clock time additionally reflects the real
// addressing cost of the mapping, which is how bench_e10 exposes the
// retrieval-complexity trade-off end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/util/stats.hpp"

namespace pmtree {

struct SimulationReport {
  std::uint64_t accesses = 0;        ///< accesses served
  std::uint64_t requests = 0;        ///< total node requests
  std::uint64_t total_rounds = 0;    ///< simulated completion time
  std::uint64_t ideal_rounds = 0;    ///< sum of ceil(size/M): lower bound
  std::uint64_t max_rounds = 0;      ///< worst single access
  double mean_rounds = 0.0;
  double wall_seconds = 0.0;         ///< host time for the replay
  std::vector<std::uint64_t> traffic;  ///< per-module request totals

  /// Simulated slowdown versus a conflict-free ideal (>= 1.0).
  [[nodiscard]] double slowdown() const noexcept {
    return ideal_rounds == 0 ? 1.0
                             : static_cast<double>(total_rounds) /
                                   static_cast<double>(ideal_rounds);
  }
};

class ParallelAccessSimulator {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency().
  explicit ParallelAccessSimulator(unsigned threads = 0) noexcept
      : threads_(threads) {}

  /// Replays `workload` against `mapping` and returns merged accounting.
  [[nodiscard]] SimulationReport run(const TreeMapping& mapping,
                                     const Workload& workload) const;

 private:
  unsigned threads_;
};

}  // namespace pmtree
