// Mappings of complete q-ary trees onto parallel memory modules.
//
// The binary COLOR construction does not transfer directly (its block
// copy step matches 2^{k-1} block slots against the 2^{k-1}-1 non-leaf
// nodes of a sibling subtree — an identity special to q = 2; the q-ary
// constructions of refs [6], [7], [9] use different machinery). What this
// module provides:
//
//   * QaryLevelModMapping — color = level mod M: conflict-free on every
//     ascending path of up to M nodes, for any arity (the generic path
//     specialist);
//   * QarySubtreeMapping — color = BFS position within the enclosing
//     aligned t-level brick, a brick-local rainbow: conflict-free on
//     aligned t-level subtrees (roots at levels divisible by t) with the
//     minimal (q^t - 1)/(q - 1) modules, and at most brick-overlap
//     conflicts elsewhere;
//   * QaryModuloMapping / QaryRandomMapping — baselines.
//
// Plus exhaustive family evaluation mirroring the binary analysis layer.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "pmtree/qary/qary_templates.hpp"
#include "pmtree/qary/qary_tree.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

using QaryColor = std::uint32_t;

class QaryMapping {
 public:
  explicit QaryMapping(QaryTree tree) noexcept : tree_(tree) {}
  virtual ~QaryMapping() = default;

  QaryMapping(const QaryMapping&) = default;
  QaryMapping& operator=(const QaryMapping&) = delete;

  [[nodiscard]] virtual QaryColor color_of(QaryNode n) const = 0;
  [[nodiscard]] virtual std::uint32_t num_modules() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const QaryTree& tree() const noexcept { return tree_; }

 private:
  QaryTree tree_;
};

/// color = level mod M: CF on ascending paths of <= M nodes, any arity.
class QaryLevelModMapping final : public QaryMapping {
 public:
  QaryLevelModMapping(QaryTree tree, std::uint32_t M)
      : QaryMapping(tree), M_(M) {}

  [[nodiscard]] QaryColor color_of(QaryNode n) const override {
    return static_cast<QaryColor>(n.level % M_);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "QARY-LEVEL-MOD(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

/// Brick coloring: the tree is tiled by disjoint aligned bricks of
/// `brick_levels` levels (roots at levels divisible by brick_levels);
/// each node is colored by its BFS position inside its brick. Every
/// aligned subtree of up to brick_levels levels is rainbow, using the
/// minimum possible (q^t - 1)/(q - 1) modules for aligned access.
class QarySubtreeMapping final : public QaryMapping {
 public:
  QarySubtreeMapping(QaryTree tree, std::uint32_t brick_levels)
      : QaryMapping(tree), t_(brick_levels) {}

  [[nodiscard]] QaryColor color_of(QaryNode n) const override {
    const QaryTree& tr = tree();
    const std::uint32_t rel = n.level % t_;
    // Brick root index: strip rel levels of arity digits.
    std::uint64_t stripped = n.index;
    for (std::uint32_t s = 0; s < rel; ++s) stripped /= tr.arity();
    // Position within the brick: BFS over rel levels.
    std::uint64_t width = 1;
    std::uint64_t offset_base = 0;
    for (std::uint32_t s = 0; s < rel; ++s) {
      offset_base += width;
      width *= tr.arity();
    }
    std::uint64_t rebuilt = stripped;
    for (std::uint32_t s = 0; s < rel; ++s) rebuilt *= tr.arity();
    return static_cast<QaryColor>(offset_base + (n.index - rebuilt));
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return static_cast<std::uint32_t>(tree().subtree_size(t_));
  }
  [[nodiscard]] std::string name() const override {
    return "QARY-BRICK(t=" + std::to_string(t_) + ")";
  }
  [[nodiscard]] std::uint32_t brick_levels() const noexcept { return t_; }

 private:
  std::uint32_t t_;
};

class QaryModuloMapping final : public QaryMapping {
 public:
  QaryModuloMapping(QaryTree tree, std::uint32_t M)
      : QaryMapping(tree), M_(M) {}

  [[nodiscard]] QaryColor color_of(QaryNode n) const override {
    return static_cast<QaryColor>(tree().bfs_id(n) % M_);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "QARY-MODULO(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

class QaryRandomMapping final : public QaryMapping {
 public:
  QaryRandomMapping(QaryTree tree, std::uint32_t M, std::uint64_t seed = 1)
      : QaryMapping(tree), M_(M), seed_(seed) {}

  [[nodiscard]] QaryColor color_of(QaryNode n) const override {
    return static_cast<QaryColor>(mix64(tree().bfs_id(n) ^ seed_) % M_);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "QARY-RANDOM(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
  std::uint64_t seed_;
};

/// Conflicts of one access.
[[nodiscard]] std::uint64_t qary_conflicts(const QaryMapping& mapping,
                                           std::span<const QaryNode> nodes);

/// Exhaustive worst-case conflicts per family.
[[nodiscard]] std::uint64_t evaluate_qary_subtrees(const QaryMapping& mapping,
                                                   std::uint32_t levels);
[[nodiscard]] std::uint64_t evaluate_qary_paths(const QaryMapping& mapping,
                                                std::uint64_t size);
[[nodiscard]] std::uint64_t evaluate_qary_level_runs(const QaryMapping& mapping,
                                                     std::uint64_t size);

/// Same, restricted to *aligned* subtrees (roots at levels divisible by
/// `align`): the family QarySubtreeMapping serves conflict-free.
[[nodiscard]] std::uint64_t evaluate_qary_aligned_subtrees(
    const QaryMapping& mapping, std::uint32_t levels, std::uint32_t align);

}  // namespace pmtree
