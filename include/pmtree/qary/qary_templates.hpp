// Template instances and enumerators for complete q-ary trees, mirroring
// the binary-tree templates module: complete q-ary subtrees (by level
// count), ascending paths, and same-level runs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pmtree/qary/qary_tree.hpp"

namespace pmtree {

/// Complete q-ary subtree of `levels` levels rooted at `root`.
struct QarySubtreeInstance {
  QaryNode root;
  std::uint32_t levels = 1;

  [[nodiscard]] bool fits(const QaryTree& tree) const noexcept {
    return tree.contains(root) && root.level + levels <= tree.levels();
  }
  [[nodiscard]] std::uint64_t size(const QaryTree& tree) const noexcept {
    return tree.subtree_size(levels);
  }
  [[nodiscard]] std::vector<QaryNode> nodes(const QaryTree& tree) const;
};

/// Ascending path of `size` nodes starting (deepest) at `start`.
struct QaryPathInstance {
  QaryNode start;
  std::uint64_t size = 1;

  [[nodiscard]] bool fits(const QaryTree& tree) const noexcept {
    return tree.contains(start) && size <= std::uint64_t{start.level} + 1;
  }
  [[nodiscard]] std::vector<QaryNode> nodes(const QaryTree& tree) const;
};

/// `size` consecutive nodes of one level starting at `first`.
struct QaryLevelRunInstance {
  QaryNode first;
  std::uint64_t size = 1;

  [[nodiscard]] bool fits(const QaryTree& tree) const noexcept {
    return tree.contains(first) &&
           first.index + size <= tree.level_width(first.level);
  }
  [[nodiscard]] std::vector<QaryNode> nodes(const QaryTree& tree) const;
};

void for_each_qary_subtree(
    const QaryTree& tree, std::uint32_t levels,
    const std::function<bool(const QarySubtreeInstance&)>& visit);

void for_each_qary_path(const QaryTree& tree, std::uint64_t size,
                        const std::function<bool(const QaryPathInstance&)>& visit);

void for_each_qary_level_run(
    const QaryTree& tree, std::uint64_t size,
    const std::function<bool(const QaryLevelRunInstance&)>& visit);

}  // namespace pmtree
