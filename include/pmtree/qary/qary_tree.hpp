// Complete q-ary trees — the generalized model of the paper's related
// work (Section 1.2: Das-Pinotti map "t-ary subtrees of a complete k-ary
// tree" conflict-free; refs [6], [7], [9]).
//
// pmtree's main algorithms are binary (the paper's scope). This module
// provides the q-ary substrate — coordinates, shapes, templates,
// enumerators and the generic mappings whose guarantees are elementary
// (level-mod is CF on ascending paths for any arity; modulo/random
// baselines) — so the library covers the generalized model the companion
// papers study, without claiming their specialized constructions.
//
// Coordinates mirror the binary case: v_q(i, j) is the i-th node
// (left-to-right) of level j; a node's parent is (i / q, j - 1); its BFS
// id is (q^j - 1)/(q - 1) + i.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

namespace pmtree {

struct QaryNode {
  std::uint32_t level = 0;
  std::uint64_t index = 0;

  friend constexpr bool operator==(const QaryNode&, const QaryNode&) = default;
  friend constexpr auto operator<=>(const QaryNode&, const QaryNode&) = default;
};

[[nodiscard]] inline std::string to_string(QaryNode n) {
  return "v(" + std::to_string(n.index) + ", " + std::to_string(n.level) + ")";
}

class QaryTree {
 public:
  /// A complete q-ary tree (q >= 2) of `levels` levels. Sizes are kept
  /// within 2^63 by precondition (q^levels bounded).
  constexpr QaryTree(std::uint32_t q, std::uint32_t levels) noexcept
      : q_(q), levels_(levels) {
    assert(q >= 2 && levels >= 1);
    assert(level_width_checked(levels - 1) > 0);
  }

  [[nodiscard]] constexpr std::uint32_t arity() const noexcept { return q_; }
  [[nodiscard]] constexpr std::uint32_t levels() const noexcept { return levels_; }

  /// q^j: nodes at level j.
  [[nodiscard]] constexpr std::uint64_t level_width(std::uint32_t j) const noexcept {
    assert(j < levels_);
    return level_width_checked(j);
  }

  /// (q^levels - 1) / (q - 1): total nodes.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return (level_width_checked(levels_ - 1) * q_ - 1) / (q_ - 1);
  }

  /// BFS id of a node: nodes of shallower levels first.
  [[nodiscard]] constexpr std::uint64_t bfs_id(QaryNode n) const noexcept {
    return (level_width_checked(n.level) - 1) / (q_ - 1) + n.index;
  }

  [[nodiscard]] constexpr bool contains(QaryNode n) const noexcept {
    return n.level < levels_ && n.index < level_width_checked(n.level);
  }

  [[nodiscard]] constexpr QaryNode parent(QaryNode n) const noexcept {
    assert(n.level > 0);
    return QaryNode{n.level - 1, n.index / q_};
  }

  /// c-th child (0 <= c < q).
  [[nodiscard]] constexpr QaryNode child(QaryNode n, std::uint32_t c) const noexcept {
    assert(c < q_);
    return QaryNode{n.level + 1, n.index * q_ + c};
  }

  /// Number of nodes of a complete q-ary subtree of `sub_levels` levels.
  [[nodiscard]] constexpr std::uint64_t subtree_size(std::uint32_t sub_levels) const noexcept {
    std::uint64_t width = 1, total = 0;
    for (std::uint32_t j = 0; j < sub_levels; ++j) {
      total += width;
      width *= q_;
    }
    return total;
  }

 private:
  [[nodiscard]] constexpr std::uint64_t level_width_checked(std::uint32_t j) const noexcept {
    std::uint64_t w = 1;
    for (std::uint32_t t = 0; t < j; ++t) w *= q_;
    return w;
  }

  std::uint32_t q_;
  std::uint32_t levels_;
};

}  // namespace pmtree
