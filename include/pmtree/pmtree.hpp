// Umbrella header: the whole pmtree public API.
//
// pmtree reproduces "Optimal Tree Access by Elementary and Composite
// Templates in Parallel Memory Systems" (Auletta, Das, De Vivo, Pinotti,
// Scarano — IPPS/IPDPS 2001): conflict-free and conflict-optimal mappings
// of complete binary trees onto parallel memory modules, the templates
// they serve, the analysis machinery that verifies the paper's theorems,
// a memory-system simulator, and the motivating applications.
#pragma once

#include "pmtree/analysis/bounds.hpp"
#include "pmtree/analysis/cost.hpp"
#include "pmtree/analysis/load_balance.hpp"
#include "pmtree/analysis/profile.hpp"
#include "pmtree/analysis/verify.hpp"
#include "pmtree/apps/dictionary.hpp"
#include "pmtree/array/array2d.hpp"
#include "pmtree/binomial/binomial_tree.hpp"
#include "pmtree/array/array_mapping.hpp"
#include "pmtree/apps/parallel_heap.hpp"
#include "pmtree/apps/range_index.hpp"
#include "pmtree/engine/arrival.hpp"
#include "pmtree/engine/engine.hpp"
#include "pmtree/engine/histogram.hpp"
#include "pmtree/engine/json.hpp"
#include "pmtree/engine/metrics.hpp"
#include "pmtree/engine/reference.hpp"
#include "pmtree/engine/sharded.hpp"
#include "pmtree/fault/plan.hpp"
#include "pmtree/mapping/baselines.hpp"
#include "pmtree/mapping/color.hpp"
#include "pmtree/mapping/combinators.hpp"
#include "pmtree/mapping/label_tree.hpp"
#include "pmtree/mapping/mapping.hpp"
#include "pmtree/qary/qary_mapping.hpp"
#include "pmtree/qary/qary_templates.hpp"
#include "pmtree/qary/qary_tree.hpp"
#include "pmtree/pms/memory_system.hpp"
#include "pmtree/pms/scheduler.hpp"
#include "pmtree/pms/simulator.hpp"
#include "pmtree/pms/trace.hpp"
#include "pmtree/pms/workload.hpp"
#include "pmtree/templates/enumerate.hpp"
#include "pmtree/templates/instance.hpp"
#include "pmtree/templates/range_cover.hpp"
#include "pmtree/templates/sampler.hpp"
#include "pmtree/tree/block.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"
#include "pmtree/util/bits.hpp"
#include "pmtree/util/parallel.hpp"
#include "pmtree/util/rng.hpp"
#include "pmtree/util/stats.hpp"
#include "pmtree/util/table.hpp"
