// TreeMapping: the abstract interface of a memory-module assignment.
//
// A mapping "colors" every node of a complete binary tree with a module
// number in {0 .. num_modules()-1} (Section 1.1 of the paper: mapping onto
// a parallel memory system == M-coloring of the tree). Concrete mappings:
//
//   * ColorMapping      — the paper's COLOR / BASIC-COLOR algorithm (§3);
//   * LabelTreeMapping  — LABEL-TREE from ref. [2], reconstructed (§6);
//   * ModuloMapping, RandomMapping, LevelShiftMapping — naive baselines.
//
// `color_of` must be a pure function of the node; implementations document
// their retrieval complexity since the paper treats addressing cost as a
// first-class evaluation criterion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmtree/tree/node.hpp"
#include "pmtree/tree/tree.hpp"

namespace pmtree {

/// Memory-module number. The paper calls these "colors".
using Color = std::uint32_t;

class TreeMapping {
 public:
  explicit TreeMapping(CompleteBinaryTree tree) noexcept : tree_(tree) {}
  virtual ~TreeMapping() = default;

  TreeMapping(const TreeMapping&) = default;
  TreeMapping& operator=(const TreeMapping&) = delete;

  /// The module storing node `n`. Precondition: tree().contains(n).
  [[nodiscard]] virtual Color color_of(Node n) const = 0;

  /// Batch retrieval kernel: `out[i] = color_of(nodes[i])` for every i.
  /// Precondition: out.size() >= nodes.size(). The base implementation is a
  /// per-node loop; concrete mappings override it with devirtualized fast
  /// paths (table gathers, branch-free arithmetic loops, and ColorMapping's
  /// block-aware resolver that amortizes the §3.2 inheritance chase across
  /// the batch). Thread-safe: concurrent calls on one mapping are allowed.
  virtual void color_of_batch(std::span<const Node> nodes,
                              std::span<Color> out) const;

  /// Number of memory modules (colors) the mapping may use.
  [[nodiscard]] virtual std::uint32_t num_modules() const noexcept = 0;

  /// Human-readable identifier used in benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const CompleteBinaryTree& tree() const noexcept { return tree_; }

  /// Bulk retrieval convenience; routed through color_of_batch.
  [[nodiscard]] std::vector<Color> colors_of(std::span<const Node> nodes) const;

 protected:
  /// Rebinds the mapping's advertised tree shape. Static mappings never
  /// call this; dynamic mappings (pmtree::dyn's IncrementalColorer) use it
  /// to report growth as deeper levels are colored. Combinators snapshot
  /// the base's shape at composition time, so a base resized underneath
  /// them is detectable (base_shape_changed()) instead of silently
  /// aliasing colors.
  void resize_tree(CompleteBinaryTree tree) noexcept { tree_ = tree; }

 private:
  CompleteBinaryTree tree_;
};

}  // namespace pmtree
