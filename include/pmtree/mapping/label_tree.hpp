// LABEL-TREE (Section 6 of the paper, original in reference [2]),
// reconstructed from the properties stated and used by the paper's proofs.
//
// The tree is cut into *disjoint* block subtrees of m = ceil(log2 M)
// levels (roots at levels jb*m). Coloring is three-staged:
//
//   * MACRO-LABEL + ROTATE (reconstructed jointly): block (ib, jb) uses
//     the length-ell color window
//
//         list[t] = (jb*ell + ib + t) mod M.
//
//     The depth term advances the window by a full ell per generation, so
//     the p = floor(M/ell) window "groups" recur along an ascending path
//     only every p generations = Omega(sqrt(M log M)) levels — the
//     MACRO-LABEL property Lemma 7's P-bound rests on. The block-index
//     term shifts consecutive same-level blocks by exactly one
//     ("list(B) = {f_0..f_{ell-1}}, list(B') = {f_1..f_ell}" in Lemma 7's
//     L-proof) and slides the window over the whole ring within each
//     generation, which is what delivers the 1 + o(1) load balance of
//     Theorem 7. (A literal group *partition* per generation cannot be
//     load balanced: the deepest generation holds a 1 - 2^-m fraction of
//     all nodes and would pin one group; see DESIGN.md §3.)
//
//   * MICRO-LABEL (pseudocode in the paper's Fig. 10): within a block,
//     the top l levels get distinct list colors (position p gets list[p]);
//     deeper levels are colored blockwise like BASIC-COLOR but with
//     sub-block parameter l, and the last node of sub-block (h, j) takes
//     list[2^l + 2^{j-l} + floor(h/2) - 1].
//
// Here l = floor(log2(ceil(sqrt(M*ceil(log2 M))))) clamped to [1, m-1] and
// ell = 2^l + 2^{m-l} - 1 (the paper's two statements about ell differ by
// one; we size the list to cover MICRO-LABEL's largest index, see
// DESIGN.md §3).
//
// Because MICRO-LABEL's list index depends only on the *relative* position
// inside a block, one table of 2^m - 1 indices serves every block: this is
// the paper's O(M)-space preprocessing giving O(1) retrieval. Without the
// table the index is resolved by an O(log M) chase (Theorem 7's
// no-preprocessing bound); both paths are implemented.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

class LabelTreeMapping final : public TreeMapping {
 public:
  /// Retrieval strategy; both give identical colors.
  enum class Retrieval : std::uint8_t {
    kTable,      ///< O(1) per node after O(M) preprocessing
    kRecursive,  ///< O(log M) per node, no preprocessing
  };

  /// Maps `tree` onto M >= 3 memory modules. `l_override` (clamped to
  /// [1, m-1]; 0 = use the paper's formula) exists for the ablation bench:
  /// the choice l ~ log2(sqrt(M log M)) balances the window size ell =
  /// 2^l + 2^{m-l} - 1 — smaller l starves the top-of-block colors, larger
  /// l starves the per-level fresh colors.
  LabelTreeMapping(CompleteBinaryTree tree, std::uint32_t M,
                   Retrieval retrieval = Retrieval::kTable,
                   std::uint32_t l_override = 0);

  [[nodiscard]] Color color_of(Node n) const override;
  /// Devirtualized loop over the (table or recursive) sigma resolution —
  /// one virtual call per batch instead of one per node.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override;
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override;

  /// m: levels per block subtree.
  [[nodiscard]] std::uint32_t m() const noexcept { return m_; }
  /// l: MICRO-LABEL's sub-block parameter.
  [[nodiscard]] std::uint32_t l() const noexcept { return l_; }
  /// ell: length of each block's color window.
  [[nodiscard]] std::uint32_t ell() const noexcept { return ell_; }
  /// p: number of disjoint window positions ("groups") on the color ring.
  [[nodiscard]] std::uint32_t group_count() const noexcept { return p_; }

 private:
  /// MICRO-LABEL list index of a block-relative position, via the table.
  [[nodiscard]] std::uint32_t sigma_table(std::uint64_t rel_pos) const noexcept {
    return micro_[rel_pos];
  }
  /// Same, resolved by the O(log M) inheritance chase.
  [[nodiscard]] std::uint32_t sigma_recursive(std::uint32_t r,
                                              std::uint64_t irel) const noexcept;

  std::uint32_t M_;
  std::uint32_t m_;
  std::uint32_t l_;
  std::uint32_t ell_;
  std::uint32_t p_;
  Retrieval retrieval_;
  std::vector<std::uint32_t> micro_;  ///< rel BFS pos -> window index
};

}  // namespace pmtree
