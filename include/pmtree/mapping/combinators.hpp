// Mapping combinators.
//
// PermutedMapping composes any mapping with a bijection on the color set.
// Conflict structure is invariant under color permutation — the property
// tests rely on this to check that the analysis layer measures structure,
// not incidental color values — while load *per module* permutes with it.
#pragma once

#include <cassert>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

class PermutedMapping final : public TreeMapping {
 public:
  /// Wraps `base` (not owned; must outlive this object) with `permutation`,
  /// a bijection on {0 .. base.num_modules()-1}.
  PermutedMapping(const TreeMapping& base, std::vector<Color> permutation)
      : TreeMapping(base.tree()), base_(base), perm_(std::move(permutation)) {
    assert(perm_.size() == base.num_modules());
  }

  /// Convenience: a uniformly random permutation drawn from `rng`.
  [[nodiscard]] static PermutedMapping shuffled(const TreeMapping& base,
                                                Rng& rng) {
    std::vector<Color> perm(base.num_modules());
    std::iota(perm.begin(), perm.end(), 0u);
    // Fisher-Yates with the library Rng (std::shuffle's distribution is
    // implementation-defined; this keeps streams reproducible everywhere).
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    return PermutedMapping(base, std::move(perm));
  }

  [[nodiscard]] Color color_of(Node n) const override {
    return perm_[base_.color_of(n)];
  }
  /// Delegates to the base's batch kernel, then permutes in place — the
  /// wrapper adds one pass, not one virtual call per node.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    base_.color_of_batch(nodes, out);
    for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = perm_[out[i]];
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return base_.num_modules();
  }
  [[nodiscard]] std::string name() const override {
    return base_.name() + "+perm";
  }

 private:
  const TreeMapping& base_;
  std::vector<Color> perm_;
};

}  // namespace pmtree
