// Mapping combinators.
//
// PermutedMapping composes any mapping with a bijection on the color set.
// Conflict structure is invariant under color permutation — the property
// tests rely on this to check that the analysis layer measures structure,
// not incidental color values — while load *per module* permutes with it.
//
// DegradedMapping composes any mapping with a *partial* collapse of the
// color set: a list of dead modules is folded onto the survivors by a
// deterministic round-robin, modelling a parallel memory system that has
// lost modules. Unlike a permutation this is lossy — formerly
// conflict-free template instances can collide on a survivor — which is
// exactly what the fault layer (pmtree/fault) wants to measure: the
// paper's guarantees degrade gracefully and quantifiably rather than
// vanishing (DESIGN.md §12).
//
// MigratedMapping composes any mapping with a *per-subtree* color
// rotation at a fixed granularity level L: every node at level >= L adds
// its subtree's rotation offset (mod M) to its base color, while nodes
// above L keep their base colors. A rotation is a color permutation
// restricted to one subtree, so the conflict structure of any template
// instance contained in a single subtree is exactly the base mapping's —
// what moves is which *modules* carry the subtree's load. That is the
// primitive the serve layer's skew-adaptive planner needs: migrating a
// hot subtree onto cold modules without touching the paper's
// conflict-freedom inside the subtree (DESIGN.md §15).
//
// AdaptiveMapping composes a *choice*: it carries a list of candidate
// mappings over the same tree and module count and delegates every color
// query to the one chosen at construction. The serve layer's
// AdaptiveSelector (pmtree/serve/adaptive.hpp) scores candidates against
// the observed batch stream and mints a fresh AdaptiveMapping at each
// epoch barrier where the choice changes — the runtime resolution of the
// paper's R10 COLOR-vs-LABEL-TREE trade-off (DESIGN.md §17).
//
// Composition audit (DESIGN.md §16): every combinator snapshots the
// base's tree shape at construction (its own tree() is that snapshot). A
// *dynamic* base — pmtree::dyn's IncrementalColorer reports growth by
// resizing its tree() — can therefore change shape underneath a wrapper
// built earlier. The wrappers reject that instead of silently aliasing:
// base_shape_changed() reports the drift, and every color path asserts
// against it, so a combinator must be composed against a quiesced base
// (or re-built per epoch, as the migration planner does).
#pragma once

#include <cassert>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

class PermutedMapping final : public TreeMapping {
 public:
  /// Wraps `base` (not owned; must outlive this object) with `permutation`,
  /// a bijection on {0 .. base.num_modules()-1}.
  PermutedMapping(const TreeMapping& base, std::vector<Color> permutation)
      : TreeMapping(base.tree()), base_(base), perm_(std::move(permutation)) {
    assert(perm_.size() == base.num_modules());
  }

  /// Convenience: a uniformly random permutation drawn from `rng`.
  [[nodiscard]] static PermutedMapping shuffled(const TreeMapping& base,
                                                Rng& rng) {
    std::vector<Color> perm(base.num_modules());
    std::iota(perm.begin(), perm.end(), 0u);
    // Fisher-Yates with the library Rng (std::shuffle's distribution is
    // implementation-defined; this keeps streams reproducible everywhere).
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    return PermutedMapping(base, std::move(perm));
  }

  [[nodiscard]] Color color_of(Node n) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    return perm_[base_.color_of(n)];
  }
  /// Delegates to the base's batch kernel, then permutes in place — the
  /// wrapper adds one pass, not one virtual call per node.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    base_.color_of_batch(nodes, out);
    for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = perm_[out[i]];
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return base_.num_modules();
  }
  /// True when the base's tree shape no longer matches the snapshot taken
  /// at composition time — a dynamic base grew or shrank underneath this
  /// wrapper, so its colors no longer cover the base's node set.
  [[nodiscard]] bool base_shape_changed() const noexcept {
    return base_.tree() != tree();
  }
  [[nodiscard]] std::string name() const override {
    return base_.name() + "+perm";
  }

 private:
  const TreeMapping& base_;
  std::vector<Color> perm_;
};

class DegradedMapping final : public TreeMapping {
 public:
  /// Wraps `base` (not owned; must outlive this object), remapping every
  /// color in `dead_modules` onto a surviving module. The j-th dead module
  /// (in ascending id order) folds onto the j-th live module modulo the
  /// live count — the same rule FaultTimeline uses for reroute targets, so
  /// a steady-state post-failure engine run and a DegradedMapping run agree
  /// on where every access lands. At least one module must survive.
  DegradedMapping(const TreeMapping& base, std::vector<Color> dead_modules)
      : TreeMapping(base.tree()), base_(base) {
    const std::uint32_t modules = base.num_modules();
    redirect_.resize(modules);
    std::iota(redirect_.begin(), redirect_.end(), 0u);
    std::vector<bool> dead(modules, false);
    for (Color d : dead_modules) {
      assert(d < modules);
      dead[d] = true;
    }
    std::vector<Color> live;
    for (Color m = 0; m < modules; ++m) {
      if (!dead[m]) live.push_back(m);
    }
    assert(!live.empty() && "DegradedMapping requires a surviving module");
    std::size_t j = 0;
    for (Color m = 0; m < modules; ++m) {
      if (dead[m]) redirect_[m] = live[j++ % live.size()];
    }
    live_count_ = static_cast<std::uint32_t>(live.size());
  }

  [[nodiscard]] Color color_of(Node n) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    return redirect_[base_.color_of(n)];
  }
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    base_.color_of_batch(nodes, out);
    for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = redirect_[out[i]];
  }
  /// See PermutedMapping::base_shape_changed.
  [[nodiscard]] bool base_shape_changed() const noexcept {
    return base_.tree() != tree();
  }
  /// The color *space* is unchanged — dead modules simply receive no nodes.
  /// Keeping num_modules() stable lets degraded results compare per-module
  /// against healthy ones without reindexing.
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return base_.num_modules();
  }
  [[nodiscard]] std::uint32_t live_modules() const noexcept {
    return live_count_;
  }
  [[nodiscard]] const std::vector<Color>& redirect_table() const noexcept {
    return redirect_;
  }
  [[nodiscard]] std::string name() const override {
    return base_.name() + "+degraded";
  }

 private:
  const TreeMapping& base_;
  std::vector<Color> redirect_;
  std::uint32_t live_count_ = 0;
};

class MigratedMapping final : public TreeMapping {
 public:
  /// Wraps `base` (not owned; must outlive this object) with a per-subtree
  /// color rotation at granularity `subtree_level` L. `rotation` has one
  /// entry per subtree rooted at level L (size 1 << L, each entry
  /// < base.num_modules()); node n with n.level >= L belongs to subtree
  /// n.index >> (n.level - L) and maps to
  /// (base.color_of(n) + rotation[subtree]) mod M. Nodes above L keep
  /// their base colors — at subtree granularity they cannot be migrated.
  MigratedMapping(const TreeMapping& base, std::uint32_t subtree_level,
                  std::vector<Color> rotation)
      : TreeMapping(base.tree()),
        base_(base),
        level_(subtree_level),
        rot_(std::move(rotation)) {
    assert(rot_.size() == (std::size_t{1} << level_));
#ifndef NDEBUG
    for (const Color r : rot_) assert(r < base.num_modules());
#endif
  }

  [[nodiscard]] Color color_of(Node n) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    Color c = base_.color_of(n);
    if (n.level >= level_) {
      c += rot_[n.index >> (n.level - level_)];
      const std::uint32_t m = base_.num_modules();
      if (c >= m) c -= m;
    }
    return c;
  }
  /// Delegates to the base's devirtualized batch kernel (the PR 2
  /// accelerator / PR 7 SIMD gather), then applies the rotation in one
  /// branch-light pass — same shape as DegradedMapping.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    base_.color_of_batch(nodes, out);
    const std::uint32_t m = base_.num_modules();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node n = nodes[i];
      if (n.level < level_) continue;
      Color c = out[i] + rot_[n.index >> (n.level - level_)];
      if (c >= m) c -= m;
      out[i] = c;
    }
  }
  /// The color space is unchanged: rotations permute colors per subtree.
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return base_.num_modules();
  }
  [[nodiscard]] std::uint32_t subtree_level() const noexcept {
    return level_;
  }
  /// See PermutedMapping::base_shape_changed.
  [[nodiscard]] bool base_shape_changed() const noexcept {
    return base_.tree() != tree();
  }
  [[nodiscard]] const std::vector<Color>& rotation_table() const noexcept {
    return rot_;
  }
  /// True when every rotation is 0 — the mapping is then the base,
  /// color for color.
  [[nodiscard]] bool is_identity() const noexcept {
    for (const Color r : rot_) {
      if (r != 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::string name() const override {
    return base_.name() + "+migrated";
  }

 private:
  const TreeMapping& base_;
  std::uint32_t level_;
  std::vector<Color> rot_;
};

/// AdaptiveMapping freezes one *choice* among candidate mappings of the
/// same tree and module count (DESIGN.md §17). It carries the full
/// candidate list so an audit can see what was on the table, but every
/// color query delegates to the single chosen candidate — the R10
/// trade-off (COLOR vs LABEL-TREE vs baseline rank differently per
/// template mix) resolved by measurement instead of by configuration.
/// The serve layer's AdaptiveSelector scores candidates against the
/// observed batch stream each epoch and mints one of these at the epoch
/// barrier, exactly like MigrationPlanner mints MigratedMapping epochs.
class AdaptiveMapping final : public TreeMapping {
 public:
  /// Wraps `candidates` (not owned; each must outlive this object),
  /// choosing `chosen` (an index into the list). All candidates must
  /// color the same tree with the same number of modules — the selector
  /// swaps the choice between epochs, and responses must stay comparable
  /// module for module.
  AdaptiveMapping(std::vector<const TreeMapping*> candidates,
                  std::size_t chosen)
      : TreeMapping(candidates.at(chosen)->tree()),
        candidates_(std::move(candidates)),
        chosen_(chosen) {
    assert(!candidates_.empty());
#ifndef NDEBUG
    for (const TreeMapping* c : candidates_) {
      assert(c != nullptr);
      assert(c->tree() == tree() && "adaptive candidates must share a tree");
      assert(c->num_modules() == candidates_.front()->num_modules() &&
             "adaptive candidates must share a module count");
    }
#endif
  }

  [[nodiscard]] Color color_of(Node n) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    return chosen_mapping().color_of(n);
  }
  /// Pure delegation to the chosen candidate's devirtualized batch kernel
  /// — unlike the other combinators there is no post-pass at all, so the
  /// adaptive layer costs one extra virtual dispatch per batch.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    assert(!base_shape_changed() && "base mapping resized under wrapper");
    chosen_mapping().color_of_batch(nodes, out);
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return candidates_.front()->num_modules();
  }
  /// True when ANY candidate's tree shape drifted from the snapshot taken
  /// at composition time — the selector may re-choose any candidate at
  /// the next epoch, so all of them must stay valid, not just the chosen
  /// one. See PermutedMapping::base_shape_changed.
  [[nodiscard]] bool base_shape_changed() const noexcept {
    for (const TreeMapping* c : candidates_) {
      if (c->tree() != tree()) return true;
    }
    return false;
  }
  [[nodiscard]] const TreeMapping& chosen_mapping() const noexcept {
    return *candidates_[chosen_];
  }
  [[nodiscard]] std::size_t chosen() const noexcept { return chosen_; }
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return candidates_.size();
  }
  [[nodiscard]] const TreeMapping& candidate(std::size_t i) const noexcept {
    return *candidates_[i];
  }
  [[nodiscard]] std::string name() const override {
    return chosen_mapping().name() + "+adaptive";
  }

 private:
  std::vector<const TreeMapping*> candidates_;
  std::size_t chosen_;
};

}  // namespace pmtree
