// Naive baseline mappings. These are the strawmen every conflict table in
// bench/ compares against: they retrieve in O(1) but have no structural
// guarantees, so templates can hit the worst case D conflicts.
//
//   * ModuloMapping:     color = bfs_id mod M. Level runs are perfect, but
//     subtrees and paths collide badly (a node and its 2^t-step ancestors
//     repeat colors with period gcd-driven patterns).
//   * LevelShiftMapping: color = (level + index) mod M — the "diagonal"
//     scheme borrowed from array skewing; good on paths of short period,
//     bad on subtrees.
//   * RandomMapping:     color = hash(bfs_id) mod M. The classic balls-in-
//     bins yardstick: expected Theta(log M / log log M) conflicts at
//     template size M; never conflict-free.
#pragma once

#include <cstdint>
#include <string>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/util/rng.hpp"

namespace pmtree {

class ModuloMapping final : public TreeMapping {
 public:
  ModuloMapping(CompleteBinaryTree tree, std::uint32_t M)
      : TreeMapping(tree), M_(M) {}

  [[nodiscard]] Color color_of(Node n) const override {
    return static_cast<Color>(bfs_id(n) % M_);
  }
  /// Branch-free arithmetic loop — no virtual dispatch per node.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    const std::uint64_t M = M_;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = static_cast<Color>(bfs_id(nodes[i]) % M);
    }
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "MODULO(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

class LevelShiftMapping final : public TreeMapping {
 public:
  LevelShiftMapping(CompleteBinaryTree tree, std::uint32_t M)
      : TreeMapping(tree), M_(M) {}

  [[nodiscard]] Color color_of(Node n) const override {
    return static_cast<Color>((n.level + n.index) % M_);
  }
  /// Branch-free arithmetic loop — no virtual dispatch per node.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    const std::uint64_t M = M_;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = static_cast<Color>((nodes[i].level + nodes[i].index) % M);
    }
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "LEVEL-SHIFT(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

/// The "single-template specialist" the paper's Section 1.2 contrasts
/// against ("most of the proposed mappings considers only one kind of
/// elementary template at a time"): color = level mod M is trivially
/// conflict-free on every ascending path of up to M nodes — with only M
/// modules, fewer than COLOR's 2M - log M — but costs K - 1 on L(K) and
/// K - ceil(log K) on S(K): versatility is what the extra modules buy.
class LevelModMapping final : public TreeMapping {
 public:
  LevelModMapping(CompleteBinaryTree tree, std::uint32_t M)
      : TreeMapping(tree), M_(M) {}

  [[nodiscard]] Color color_of(Node n) const override {
    return static_cast<Color>(n.level % M_);
  }
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = static_cast<Color>(nodes[i].level % M_);
    }
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "LEVEL-MOD(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
};

class RandomMapping final : public TreeMapping {
 public:
  RandomMapping(CompleteBinaryTree tree, std::uint32_t M, std::uint64_t seed = 1)
      : TreeMapping(tree), M_(M), seed_(seed) {}

  [[nodiscard]] Color color_of(Node n) const override {
    return static_cast<Color>(mix64(bfs_id(n) ^ seed_) % M_);
  }
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override {
    const std::uint64_t M = M_;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = static_cast<Color>(mix64(bfs_id(nodes[i]) ^ seed_) % M);
    }
  }
  [[nodiscard]] std::uint32_t num_modules() const noexcept override { return M_; }
  [[nodiscard]] std::string name() const override {
    return "RANDOM(M=" + std::to_string(M_) + ")";
  }

 private:
  std::uint32_t M_;
  std::uint64_t seed_;
};

}  // namespace pmtree
