// The paper's COLOR algorithm (Section 3) and its building block
// BASIC-COLOR.
//
// COLOR(T, N, K), with K = 2^k - 1 and N >= k, colors a complete binary
// tree with N + K - k colors such that access to every complete subtree of
// size K (S-template) and every ascending path of N nodes (P-template) is
// conflict-free, and access to every run of K consecutive same-level nodes
// (L-template) costs at most one conflict. Theorem 2 shows N + K - k
// colors are necessary, so the mapping is CF-optimal.
//
// Structure (Fig. 6/7 of the paper): the tree is divided into the family
// B(N) of overlapping blocks — complete subtrees of N levels whose roots
// sit at levels j*(N-k) — so consecutive block generations share k levels.
// The root block is colored by BASIC-COLOR: its top k levels get the
// distinct colors Sigma = {0..K-1} (node v(i,j) gets color 2^j + i - 1 =
// its BFS id), and each deeper level is colored blockwise by BOTTOM: the
// first 2^{k-1}-1 nodes of block(h, j) copy the colors of the non-leaf
// nodes of the size-K subtree rooted at the *sibling* of the block's
// (k-1)-st ancestor, and the last node takes the fresh color
// Gamma[j - k] (Gamma = {K .. N+K-k-1}). Deeper blocks B(i, jb) reuse
// BOTTOM with Gamma(i, jb) = the colors of the N-k nodes from the parent
// block's root down to the parent of this block's root (top-down order;
// see DESIGN.md §3 for why both endpoints' treatment matters — the
// GammaVariant mutants exist to let tests prove the resolution correct).
//
// Retrieval cost (paper §3.2): O(H) time per node with no precomputation
// (color_of), O(1) with the O(2^H)-space full table (materialize /
// EagerColorMapping below). Both paths are implemented and tested to
// agree; the conflict theorems are validated against both.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pmtree/mapping/mapping.hpp"
#include "pmtree/tree/block.hpp"
#include "pmtree/tree/node.hpp"
#include "pmtree/util/bits.hpp"

namespace pmtree {

namespace internal {

/// Which node set Gamma(i, jb) is read from. The paper's text is ambiguous
/// ("the path from the root of B(i', j-1) to the root of B(i, j)" has
/// N-k+1 nodes but Gamma must have N-k); kCorrect is the resolution proved
/// right by the exhaustive conflict-freeness tests, the others are mutants
/// used in failure-injection tests and the E2 bench.
enum class GammaVariant : std::uint8_t {
  kCorrect,           ///< parent-block root .. parent of this block's root
  kIncludeChildRoot,  ///< parent of parent-block root's child .. block root
  kReversed,          ///< kCorrect's node set in bottom-up order
};

}  // namespace internal

/// COLOR(T, N, K). See file comment. Precondition: 1 <= k <= N, and N > k
/// whenever the tree has more than N levels (otherwise the block family
/// B(N) is undefined — the paper requires it implicitly via H = h(N-k)+N).
class ColorMapping : public TreeMapping {
 public:
  /// Retrieval strategy; all modes give identical colors.
  enum class Retrieval : std::uint8_t {
    /// O(H) time, O(1) space: chase the inheritance chain node by node.
    kLazy,
    /// O(H/(N-k)) time after O(2^N) preprocessing: the paper's
    /// PRE-BASIC-COLOR builds the UP table once — the inheritance chase
    /// within a block depends only on the *relative* position, so a single
    /// block-shaped table resolves any block in one lookup and retrieval
    /// jumps block to block (RETRIEVING-COLOR, Fig. 9).
    kBlockTable,
  };

  ColorMapping(CompleteBinaryTree tree, std::uint32_t N, std::uint32_t k,
               internal::GammaVariant variant = internal::GammaVariant::kCorrect,
               Retrieval retrieval = Retrieval::kLazy);

  /// K = 2^k - 1: the conflict-free subtree template size.
  [[nodiscard]] std::uint64_t K() const noexcept { return tree_size(k_); }
  [[nodiscard]] std::uint32_t N() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

  /// N + K - k modules (Theorem 1 / Theorem 3).
  [[nodiscard]] std::uint32_t num_modules() const noexcept override;

  /// O(H) time with kLazy, O(H/(N-k)) with kBlockTable.
  [[nodiscard]] Color color_of(Node n) const override;

  /// Block-aware batch kernel. The per-node chase of §3.2 re-derives two
  /// shared prefixes over and over: the colors of the tree's top levels
  /// (where every chase terminates) and each block's Gamma list (which
  /// every block-last node of the block reads). The batch resolver pays
  /// for them once instead of once per node:
  ///
  ///   * a truncated materialization of the top min(H, 20) levels (built
  ///     lazily on first use, shared across calls and copies) turns any
  ///     chase step that lands above the horizon into one lookup;
  ///   * a position-only block resolution table (the kBlockTable table,
  ///     built for the batch path even under kLazy when it fits) collapses
  ///     the within-block chase to one lookup;
  ///   * when the top table covers a whole block, every chase provably
  ///     terminates in a top-table gather; the kernel then runs two
  ///     phases — a branch-free arithmetic chase (each jump is one
  ///     precomposed Step lookup) that emits terminal BFS ids, then one
  ///     tight gather loop whose independent loads the CPU overlaps;
  ///   * outside the fast path, input runs inside one block share that
  ///     block's resolved Gamma entries through a per-block memo, so a
  ///     group of nodes triggers each Gamma chase once per block.
  ///
  /// Net: N nodes x O(H) chases become O(H/(N-k)) branch-free arithmetic
  /// steps plus O(1) gathers per node. Identical colors to color_of in
  /// every retrieval mode.
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override;

  [[nodiscard]] std::string name() const override;

  /// Colors of the whole tree indexed by bfs_id — the O(2^H) table the
  /// paper's PRE-* preprocessing ultimately enables. Computed by a direct
  /// level-by-level simulation of BASIC-COLOR/BOTTOM (independent of
  /// color_of's recursion, so the two act as cross-checks).
  [[nodiscard]] std::vector<Color> materialize() const;

 private:
  /// Where a block-relative position ultimately takes its color from:
  /// either a BFS position among the block's top k levels, or entry t of
  /// the block's Gamma list. This is position-only, so one table serves
  /// every block of the tree (the paper's UP table, collapsed).
  struct Resolution {
    bool from_gamma = false;
    std::uint32_t value = 0;  ///< BFS position, or Gamma index t
  };

  /// Resolves a block-relative (level, index) by chasing inheritance.
  [[nodiscard]] Resolution resolve_in_block(std::uint32_t r,
                                            std::uint64_t irel) const noexcept;

  /// Shared state of the batch kernel: the resolved-once block prefixes.
  /// Built lazily by accel() on first color_of_batch call (atomically
  /// published, so concurrent batch calls are safe) and shared by copies;
  /// immutable once published.
  /// One inheritance-chase jump, compiled to branch-free arithmetic. A
  /// chase step from block position (r, irel) of block (ib, jb) lands on
  /// either a Gamma node of the parent generation or a shared top-k node —
  /// both have the closed form
  ///   level = jb*stride + dlevel,  index = ((ib >> rshift) << lshift) + add
  /// so one 8-byte table entry replaces the resolve + from_gamma branch +
  /// gamma_node/subtree_node_at call of the scalar chase.
  struct Step {
    std::int8_t dlevel = 0;
    std::uint8_t rshift = 0;
    std::uint8_t lshift = 0;
    std::uint32_t add = 0;
  };

  struct BatchAccel {
    std::uint32_t top_levels = 0;  ///< levels [0, top_levels) materialized
    std::vector<Color> top_colors;
    std::vector<Resolution> block_table;  ///< kLazy batch path; empty if too big
    /// Fast-chase tables, built when the top table covers a whole block
    /// (then every chase provably terminates in a top-table gather).
    /// Per level j >= k: block-relative level r, block root level jb*stride,
    /// and 2^r - 1 (the level's offset into the position table) — three L1
    /// lookups replace the per-step division by the stride.
    std::vector<std::uint8_t> r_of;
    std::vector<std::uint8_t> root_of;
    std::vector<std::uint32_t> pos_base;
    std::vector<Step> steps;  ///< composed jump per block position
  };
  [[nodiscard]] const BatchAccel& accel() const;

  /// Colors of the top `levels` levels by bfs_id — materialize() truncated.
  [[nodiscard]] std::vector<Color> materialize_prefix(std::uint32_t levels) const;

  std::uint32_t n_;  ///< N: levels per block
  std::uint32_t k_;  ///< k: log2(K+1)
  internal::GammaVariant variant_;
  Retrieval retrieval_;
  std::vector<Resolution> block_table_;  ///< kBlockTable: 2^min(N,H) - 1 entries
  mutable std::shared_ptr<const BatchAccel> accel_;
};

/// BASIC-COLOR(B, N, K): the single-block special case — a tree of at most
/// N levels colored with N + K - k colors (Theorem 1). Provided as its own
/// type because the paper analyses it separately.
class BasicColorMapping final : public ColorMapping {
 public:
  BasicColorMapping(CompleteBinaryTree tree, std::uint32_t N, std::uint32_t k);
  [[nodiscard]] std::string name() const override;
};

/// COLOR with the full color table materialized up front: O(1) retrieval,
/// O(2^H) space — the "fast addressing" end of the paper's trade-off.
class EagerColorMapping final : public TreeMapping {
 public:
  explicit EagerColorMapping(const ColorMapping& base);

  [[nodiscard]] Color color_of(Node n) const override {
    return table_[bfs_id(n)];
  }
  /// Devirtualized table gather; runs the AVX2 gather kernel when the
  /// table is small enough for 32-bit indices (trees up to 31 levels).
  void color_of_batch(std::span<const Node> nodes,
                      std::span<Color> out) const override;
  [[nodiscard]] std::uint32_t num_modules() const noexcept override {
    return modules_;
  }
  [[nodiscard]] std::string name() const override;

 private:
  std::vector<Color> table_;
  std::uint32_t modules_;
  std::string base_name_;
};

/// The Section 4 instantiation: given M = 2^m - 1 memory modules, COLOR
/// with K = 2^{m-1} - 1 and N = 2^{m-1} + m - 1 uses exactly M colors and
/// achieves cost <= 1 on S(M) and P(M) (Theorems 4-5), which is optimal.
/// For general M the largest 2^m - 1 <= M is used (paper §5: constants
/// only). Precondition: M >= 3.
[[nodiscard]] ColorMapping make_optimal_color_mapping(CompleteBinaryTree tree,
                                                      std::uint32_t M);

/// The Section 1.3 scaling knob ("the mapping algorithm must scale with
/// the number of memory modules"): given a module budget M and a subtree
/// requirement k (CF subtrees of size K = 2^k - 1), spends the remaining
/// budget on path length — the largest N with N + K - k <= M, so paths of
/// up to N = M - K + k nodes are conflict-free (Theorem 3, and optimal by
/// Theorem 2). Preconditions: k >= 1 and M >= cf_modules(k+1, k) (enough
/// budget for at least one level below the subtree horizon when the tree
/// is taller than one block).
[[nodiscard]] ColorMapping make_cf_mapping_for_modules(CompleteBinaryTree tree,
                                                       std::uint32_t M,
                                                       std::uint32_t k);

}  // namespace pmtree
